//! The structured event model.
//!
//! One [`TraceEvent`] per observable simulator fact. Events are small
//! `Copy` values — no heap allocation happens on the emitting side —
//! and every variant carries the simulation time `t` (microseconds) as
//! its first field. Serialisation to a single JSON object per event
//! (fixed key order, so output is byte-deterministic) lives here too.

use wmsn_util::json::Json;
use wmsn_util::NodeId;

/// Radio tier of a traced frame. Mirrors the simulator's `Tier` without
/// depending on it (the sim crate depends on this crate, not the other
/// way round).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceTier {
    /// Low-power sensor tier (ZigBee-class).
    Sensor,
    /// Mesh backbone tier (WiFi-class).
    Mesh,
}

impl TraceTier {
    /// Stable string form used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceTier::Sensor => "sensor",
            TraceTier::Mesh => "mesh",
        }
    }

    /// Inverse of [`TraceTier::as_str`].
    pub fn from_name(s: &str) -> Option<TraceTier> {
        match s {
            "sensor" => Some(TraceTier::Sensor),
            "mesh" => Some(TraceTier::Mesh),
            _ => None,
        }
    }
}

/// Frame kind of a traced transmission. Mirrors the simulator's
/// `PacketKind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Routing-control frame.
    Control,
    /// Application data frame.
    Data,
    /// Security-protocol frame.
    Security,
}

impl TraceKind {
    /// Stable string form used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Control => "control",
            TraceKind::Data => "data",
            TraceKind::Security => "security",
        }
    }

    /// Inverse of [`TraceKind::as_str`].
    pub fn from_name(s: &str) -> Option<TraceKind> {
        match s {
            "control" => Some(TraceKind::Control),
            "data" => Some(TraceKind::Data),
            "security" => Some(TraceKind::Security),
            _ => None,
        }
    }
}

/// Why a scheduled reception never reached the behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropCause {
    /// Overlapping airtime at the receiver (collision model).
    Collision,
    /// Random medium loss.
    Loss,
    /// Receiver was dead (or asleep) at arrival time.
    Dead,
    /// Unicast link destination was outside the sender's radio range.
    OutOfRange,
    /// Receiver's battery died paying the receive cost.
    Energy,
}

impl DropCause {
    /// Stable string form used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            DropCause::Collision => "collision",
            DropCause::Loss => "loss",
            DropCause::Dead => "dead",
            DropCause::OutOfRange => "out_of_range",
            DropCause::Energy => "energy",
        }
    }

    /// Inverse of [`DropCause::as_str`].
    pub fn from_name(s: &str) -> Option<DropCause> {
        match s {
            "collision" => Some(DropCause::Collision),
            "loss" => Some(DropCause::Loss),
            "dead" => Some(DropCause::Dead),
            "out_of_range" => Some(DropCause::OutOfRange),
            "energy" => Some(DropCause::Energy),
            _ => None,
        }
    }
}

/// One structured simulator event. All variants are `Copy`; times are
/// simulation microseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A frame left the antenna.
    TxStart {
        /// Simulation time.
        t: u64,
        /// World-unique frame sequence number.
        seq: u64,
        /// Transmitting node.
        src: NodeId,
        /// Link-layer destination (`None` = broadcast).
        dst: Option<NodeId>,
        /// Radio tier.
        tier: TraceTier,
        /// Frame kind.
        kind: TraceKind,
        /// On-air size in bytes.
        bytes: u32,
    },
    /// CSMA found the channel busy; the frame was re-enqueued with
    /// backoff (the lifecycle "enqueue" event).
    TxDefer {
        /// Simulation time.
        t: u64,
        /// Deferring node.
        src: NodeId,
        /// Radio tier.
        tier: TraceTier,
        /// Backoff attempt number (0-based).
        attempt: u8,
    },
    /// CSMA exhausted its backoff attempts; the frame was abandoned
    /// before ever getting a sequence number.
    TxGiveUp {
        /// Simulation time.
        t: u64,
        /// Abandoning node.
        src: NodeId,
        /// Radio tier.
        tier: TraceTier,
    },
    /// A frame was received intact and passed to the behaviour.
    Rx {
        /// Simulation time.
        t: u64,
        /// Frame sequence number.
        seq: u64,
        /// Receiving node.
        node: NodeId,
    },
    /// A scheduled reception was dropped.
    Drop {
        /// Simulation time.
        t: u64,
        /// Frame sequence number.
        seq: u64,
        /// Would-be receiver.
        node: NodeId,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// A protocol forwarded (or originated, `hops == 1`) an application
    /// message.
    Forward {
        /// Simulation time.
        t: u64,
        /// Forwarding node.
        node: NodeId,
        /// Message originator.
        origin: NodeId,
        /// Application message id.
        msg_id: u64,
        /// Next hop (`None` = broadcast / unknown).
        next: Option<NodeId>,
        /// Hop count after this transmission.
        hops: u32,
    },
    /// An application message reached its final destination.
    Deliver {
        /// Simulation time.
        t: u64,
        /// Destination node.
        node: NodeId,
        /// Message originator.
        origin: NodeId,
        /// Application message id.
        msg_id: u64,
        /// Radio hops traversed.
        hops: u32,
        /// End-to-end latency in microseconds.
        latency_us: u64,
    },
    /// SPR/MLR route discovery: an RREQ was originated
    /// (`forwarded == false`) or re-flooded (`forwarded == true`).
    RreqFlood {
        /// Simulation time.
        t: u64,
        /// Flooding node.
        node: NodeId,
        /// Discovery originator.
        origin: NodeId,
        /// Request id (per-originator).
        req_id: u64,
        /// Whether this is a relay of someone else's RREQ.
        forwarded: bool,
    },
    /// A cached route answered an RREQ without reaching a gateway —
    /// the paper's §5.2 optimisation.
    CacheReply {
        /// Simulation time.
        t: u64,
        /// Answering node.
        node: NodeId,
        /// Discovery originator.
        origin: NodeId,
        /// Request id.
        req_id: u64,
        /// Gateway the cached route leads to.
        gateway: NodeId,
        /// Gateway place index.
        place: u16,
    },
    /// A route was installed (RREP accepted into the routing table).
    RouteInstall {
        /// Simulation time.
        t: u64,
        /// Installing node.
        node: NodeId,
        /// Route's gateway.
        gateway: NodeId,
        /// Gateway place index.
        place: u16,
        /// Route length in hops.
        hops: u32,
        /// Bottleneck residual energy (per-mille) along the route —
        /// the MLR term that justifies the choice.
        energy_pm: u16,
    },
    /// MLR picked a route for a data message; the recorded terms are
    /// the ones the selection policy weighed.
    RouteSelect {
        /// Simulation time.
        t: u64,
        /// Selecting node.
        node: NodeId,
        /// Chosen gateway.
        gateway: NodeId,
        /// Chosen place index.
        place: u16,
        /// Route length in hops.
        hops: u32,
        /// Bottleneck residual energy (per-mille).
        energy_pm: u16,
    },
    /// A gateway occupied a (new) place at a round boundary.
    GatewayMove {
        /// Simulation time.
        t: u64,
        /// Moving gateway.
        gateway: NodeId,
        /// New place index.
        place: u16,
    },
    /// A node's position changed.
    NodeMove {
        /// Simulation time.
        t: u64,
        /// Moved node.
        node: NodeId,
        /// New x coordinate (metres).
        x: f64,
        /// New y coordinate (metres).
        y: f64,
    },
    /// A node's radio was put to sleep.
    NodeSleep {
        /// Simulation time.
        t: u64,
        /// Sleeping node.
        node: NodeId,
    },
    /// A node was woken (or revived).
    NodeWake {
        /// Simulation time.
        t: u64,
        /// Woken node.
        node: NodeId,
    },
    /// A node was killed (battery drain or fault injection).
    NodeKill {
        /// Simulation time.
        t: u64,
        /// Killed node.
        node: NodeId,
    },
    /// A node's cumulative energy consumption changed.
    Energy {
        /// Simulation time.
        t: u64,
        /// Charged node.
        node: NodeId,
        /// Total joules consumed so far (0 for unlimited batteries).
        consumed_j: f64,
    },
}

fn id(n: NodeId) -> Json {
    Json::from(n.0 as u64)
}

fn opt_id(n: Option<NodeId>) -> Json {
    match n {
        Some(n) => id(n),
        None => Json::Null,
    }
}

impl TraceEvent {
    /// Stable name of this event's variant — the `"ev"` field of the
    /// JSONL form and the key of [`crate::CountingSink`] tallies.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::TxStart { .. } => "tx_start",
            TraceEvent::TxDefer { .. } => "tx_defer",
            TraceEvent::TxGiveUp { .. } => "tx_giveup",
            TraceEvent::Rx { .. } => "rx",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Forward { .. } => "forward",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::RreqFlood { .. } => "rreq_flood",
            TraceEvent::CacheReply { .. } => "cache_reply",
            TraceEvent::RouteInstall { .. } => "route_install",
            TraceEvent::RouteSelect { .. } => "route_select",
            TraceEvent::GatewayMove { .. } => "gateway_move",
            TraceEvent::NodeMove { .. } => "node_move",
            TraceEvent::NodeSleep { .. } => "node_sleep",
            TraceEvent::NodeWake { .. } => "node_wake",
            TraceEvent::NodeKill { .. } => "node_kill",
            TraceEvent::Energy { .. } => "energy",
        }
    }

    /// Serialise to one flat JSON object with fixed key order
    /// (`ev`, `t`, then variant fields) — the JSONL wire form.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> =
            vec![("ev", Json::from(self.name())), ("t", Json::from(self.t()))];
        match *self {
            TraceEvent::TxStart {
                seq,
                src,
                dst,
                tier,
                kind,
                bytes,
                ..
            } => {
                fields.push(("seq", Json::from(seq)));
                fields.push(("src", id(src)));
                fields.push(("dst", opt_id(dst)));
                fields.push(("tier", Json::from(tier.as_str())));
                fields.push(("kind", Json::from(kind.as_str())));
                fields.push(("bytes", Json::from(bytes as u64)));
            }
            TraceEvent::TxDefer {
                src, tier, attempt, ..
            } => {
                fields.push(("src", id(src)));
                fields.push(("tier", Json::from(tier.as_str())));
                fields.push(("attempt", Json::from(attempt as u64)));
            }
            TraceEvent::TxGiveUp { src, tier, .. } => {
                fields.push(("src", id(src)));
                fields.push(("tier", Json::from(tier.as_str())));
            }
            TraceEvent::Rx { seq, node, .. } => {
                fields.push(("seq", Json::from(seq)));
                fields.push(("node", id(node)));
            }
            TraceEvent::Drop {
                seq, node, cause, ..
            } => {
                fields.push(("seq", Json::from(seq)));
                fields.push(("node", id(node)));
                fields.push(("cause", Json::from(cause.as_str())));
            }
            TraceEvent::Forward {
                node,
                origin,
                msg_id,
                next,
                hops,
                ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("origin", id(origin)));
                fields.push(("msg_id", Json::from(msg_id)));
                fields.push(("next", opt_id(next)));
                fields.push(("hops", Json::from(hops as u64)));
            }
            TraceEvent::Deliver {
                node,
                origin,
                msg_id,
                hops,
                latency_us,
                ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("origin", id(origin)));
                fields.push(("msg_id", Json::from(msg_id)));
                fields.push(("hops", Json::from(hops as u64)));
                fields.push(("latency_us", Json::from(latency_us)));
            }
            TraceEvent::RreqFlood {
                node,
                origin,
                req_id,
                forwarded,
                ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("origin", id(origin)));
                fields.push(("req_id", Json::from(req_id)));
                fields.push(("forwarded", Json::from(forwarded)));
            }
            TraceEvent::CacheReply {
                node,
                origin,
                req_id,
                gateway,
                place,
                ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("origin", id(origin)));
                fields.push(("req_id", Json::from(req_id)));
                fields.push(("gateway", id(gateway)));
                fields.push(("place", Json::from(place as u64)));
            }
            TraceEvent::RouteInstall {
                node,
                gateway,
                place,
                hops,
                energy_pm,
                ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("gateway", id(gateway)));
                fields.push(("place", Json::from(place as u64)));
                fields.push(("hops", Json::from(hops as u64)));
                fields.push(("energy_pm", Json::from(energy_pm as u64)));
            }
            TraceEvent::RouteSelect {
                node,
                gateway,
                place,
                hops,
                energy_pm,
                ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("gateway", id(gateway)));
                fields.push(("place", Json::from(place as u64)));
                fields.push(("hops", Json::from(hops as u64)));
                fields.push(("energy_pm", Json::from(energy_pm as u64)));
            }
            TraceEvent::GatewayMove { gateway, place, .. } => {
                fields.push(("gateway", id(gateway)));
                fields.push(("place", Json::from(place as u64)));
            }
            TraceEvent::NodeMove { node, x, y, .. } => {
                fields.push(("node", id(node)));
                fields.push(("x", Json::from(x)));
                fields.push(("y", Json::from(y)));
            }
            TraceEvent::NodeSleep { node, .. }
            | TraceEvent::NodeWake { node, .. }
            | TraceEvent::NodeKill { node, .. } => {
                fields.push(("node", id(node)));
            }
            TraceEvent::Energy {
                node, consumed_j, ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("consumed_j", Json::from(consumed_j)));
            }
        }
        Json::obj(fields)
    }

    /// Decode a parsed trace line back into the event it serialised
    /// from — the exact inverse of [`TraceEvent::to_json`], so recorded
    /// JSONL can be replayed through online consumers (the health
    /// monitor's offline mode). Unknown event names and missing or
    /// mistyped fields are hard errors, same discipline as the parser.
    pub fn from_record(rec: &[(String, crate::parse::Value)]) -> Result<TraceEvent, String> {
        use crate::parse::get;
        let str_of = |key: &str| -> Result<&str, String> {
            get(rec, key)
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let u64_of = |key: &str| -> Result<u64, String> {
            get(rec, key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("missing integer field '{key}'"))
        };
        let f64_of = |key: &str| -> Result<f64, String> {
            get(rec, key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("missing number field '{key}'"))
        };
        let node_of = |key: &str| -> Result<NodeId, String> {
            let n = u64_of(key)?;
            u32::try_from(n)
                .map(NodeId)
                .map_err(|_| format!("field '{key}' out of NodeId range"))
        };
        let opt_node_of = |key: &str| -> Result<Option<NodeId>, String> {
            match get(rec, key) {
                Some(crate::parse::Value::Null) => Ok(None),
                Some(_) => node_of(key).map(Some),
                None => Err(format!("missing field '{key}'")),
            }
        };
        let place_of = || -> Result<u16, String> {
            u16::try_from(u64_of("place")?).map_err(|_| "field 'place' out of range".into())
        };
        let hops_of = || -> Result<u32, String> {
            u32::try_from(u64_of("hops")?).map_err(|_| "field 'hops' out of range".into())
        };
        let energy_pm_of = || -> Result<u16, String> {
            u16::try_from(u64_of("energy_pm")?).map_err(|_| "field 'energy_pm' out of range".into())
        };
        let tier_of = || -> Result<TraceTier, String> {
            TraceTier::from_name(str_of("tier")?).ok_or_else(|| "unknown tier".into())
        };
        let ev = str_of("ev")?;
        let t = u64_of("t")?;
        match ev {
            "tx_start" => Ok(TraceEvent::TxStart {
                t,
                seq: u64_of("seq")?,
                src: node_of("src")?,
                dst: opt_node_of("dst")?,
                tier: tier_of()?,
                kind: TraceKind::from_name(str_of("kind")?).ok_or("unknown kind")?,
                bytes: u32::try_from(u64_of("bytes")?).map_err(|_| "field 'bytes' out of range")?,
            }),
            "tx_defer" => Ok(TraceEvent::TxDefer {
                t,
                src: node_of("src")?,
                tier: tier_of()?,
                attempt: u8::try_from(u64_of("attempt")?)
                    .map_err(|_| "field 'attempt' out of range")?,
            }),
            "tx_giveup" => Ok(TraceEvent::TxGiveUp {
                t,
                src: node_of("src")?,
                tier: tier_of()?,
            }),
            "rx" => Ok(TraceEvent::Rx {
                t,
                seq: u64_of("seq")?,
                node: node_of("node")?,
            }),
            "drop" => Ok(TraceEvent::Drop {
                t,
                seq: u64_of("seq")?,
                node: node_of("node")?,
                cause: DropCause::from_name(str_of("cause")?).ok_or("unknown drop cause")?,
            }),
            "forward" => Ok(TraceEvent::Forward {
                t,
                node: node_of("node")?,
                origin: node_of("origin")?,
                msg_id: u64_of("msg_id")?,
                next: opt_node_of("next")?,
                hops: hops_of()?,
            }),
            "deliver" => Ok(TraceEvent::Deliver {
                t,
                node: node_of("node")?,
                origin: node_of("origin")?,
                msg_id: u64_of("msg_id")?,
                hops: hops_of()?,
                latency_us: u64_of("latency_us")?,
            }),
            "rreq_flood" => Ok(TraceEvent::RreqFlood {
                t,
                node: node_of("node")?,
                origin: node_of("origin")?,
                req_id: u64_of("req_id")?,
                forwarded: matches!(get(rec, "forwarded"), Some(crate::parse::Value::Bool(true))),
            }),
            "cache_reply" => Ok(TraceEvent::CacheReply {
                t,
                node: node_of("node")?,
                origin: node_of("origin")?,
                req_id: u64_of("req_id")?,
                gateway: node_of("gateway")?,
                place: place_of()?,
            }),
            "route_install" => Ok(TraceEvent::RouteInstall {
                t,
                node: node_of("node")?,
                gateway: node_of("gateway")?,
                place: place_of()?,
                hops: hops_of()?,
                energy_pm: energy_pm_of()?,
            }),
            "route_select" => Ok(TraceEvent::RouteSelect {
                t,
                node: node_of("node")?,
                gateway: node_of("gateway")?,
                place: place_of()?,
                hops: hops_of()?,
                energy_pm: energy_pm_of()?,
            }),
            "gateway_move" => Ok(TraceEvent::GatewayMove {
                t,
                gateway: node_of("gateway")?,
                place: place_of()?,
            }),
            "node_move" => Ok(TraceEvent::NodeMove {
                t,
                node: node_of("node")?,
                x: f64_of("x")?,
                y: f64_of("y")?,
            }),
            "node_sleep" => Ok(TraceEvent::NodeSleep {
                t,
                node: node_of("node")?,
            }),
            "node_wake" => Ok(TraceEvent::NodeWake {
                t,
                node: node_of("node")?,
            }),
            "node_kill" => Ok(TraceEvent::NodeKill {
                t,
                node: node_of("node")?,
            }),
            "energy" => Ok(TraceEvent::Energy {
                t,
                node: node_of("node")?,
                consumed_j: f64_of("consumed_j")?,
            }),
            other => Err(format!("unknown event '{other}'")),
        }
    }

    /// Parse one JSONL trace line and decode it — a convenience over
    /// [`crate::parse::parse_line`] + [`TraceEvent::from_record`].
    pub fn from_json_line(line: &str) -> Result<TraceEvent, String> {
        Self::from_record(&crate::parse::parse_line(line)?)
    }

    /// Simulation time of the event, microseconds.
    pub fn t(&self) -> u64 {
        match *self {
            TraceEvent::TxStart { t, .. }
            | TraceEvent::TxDefer { t, .. }
            | TraceEvent::TxGiveUp { t, .. }
            | TraceEvent::Rx { t, .. }
            | TraceEvent::Drop { t, .. }
            | TraceEvent::Forward { t, .. }
            | TraceEvent::Deliver { t, .. }
            | TraceEvent::RreqFlood { t, .. }
            | TraceEvent::CacheReply { t, .. }
            | TraceEvent::RouteInstall { t, .. }
            | TraceEvent::RouteSelect { t, .. }
            | TraceEvent::GatewayMove { t, .. }
            | TraceEvent::NodeMove { t, .. }
            | TraceEvent::NodeSleep { t, .. }
            | TraceEvent::NodeWake { t, .. }
            | TraceEvent::NodeKill { t, .. }
            | TraceEvent::Energy { t, .. } => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_form_is_compact_and_key_ordered() {
        let ev = TraceEvent::TxStart {
            t: 42,
            seq: 7,
            src: NodeId(3),
            dst: None,
            tier: TraceTier::Sensor,
            kind: TraceKind::Data,
            bytes: 32,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"ev":"tx_start","t":42,"seq":7,"src":3,"dst":null,"tier":"sensor","kind":"data","bytes":32}"#
        );
    }

    #[test]
    fn every_variant_round_trips_through_jsonl() {
        let events = [
            TraceEvent::TxStart {
                t: 1,
                seq: 2,
                src: NodeId(3),
                dst: Some(NodeId(4)),
                tier: TraceTier::Mesh,
                kind: TraceKind::Security,
                bytes: 48,
            },
            TraceEvent::TxStart {
                t: 1,
                seq: 2,
                src: NodeId(3),
                dst: None,
                tier: TraceTier::Sensor,
                kind: TraceKind::Control,
                bytes: 16,
            },
            TraceEvent::TxDefer {
                t: 2,
                src: NodeId(5),
                tier: TraceTier::Sensor,
                attempt: 3,
            },
            TraceEvent::TxGiveUp {
                t: 3,
                src: NodeId(5),
                tier: TraceTier::Mesh,
            },
            TraceEvent::Rx {
                t: 4,
                seq: 9,
                node: NodeId(6),
            },
            TraceEvent::Drop {
                t: 5,
                seq: 9,
                node: NodeId(6),
                cause: DropCause::Energy,
            },
            TraceEvent::Forward {
                t: 6,
                node: NodeId(7),
                origin: NodeId(1),
                msg_id: 11,
                next: None,
                hops: 2,
            },
            TraceEvent::Deliver {
                t: 7,
                node: NodeId(8),
                origin: NodeId(1),
                msg_id: 11,
                hops: 3,
                latency_us: 1234,
            },
            TraceEvent::RreqFlood {
                t: 8,
                node: NodeId(2),
                origin: NodeId(2),
                req_id: 1,
                forwarded: false,
            },
            TraceEvent::CacheReply {
                t: 9,
                node: NodeId(3),
                origin: NodeId(2),
                req_id: 1,
                gateway: NodeId(10),
                place: 2,
            },
            TraceEvent::RouteInstall {
                t: 10,
                node: NodeId(3),
                gateway: NodeId(10),
                place: 2,
                hops: 4,
                energy_pm: 900,
            },
            TraceEvent::RouteSelect {
                t: 11,
                node: NodeId(3),
                gateway: NodeId(10),
                place: 2,
                hops: 4,
                energy_pm: 900,
            },
            TraceEvent::GatewayMove {
                t: 12,
                gateway: NodeId(10),
                place: 0,
            },
            TraceEvent::NodeMove {
                t: 13,
                node: NodeId(4),
                x: 1.5,
                y: -2.25,
            },
            TraceEvent::NodeSleep {
                t: 14,
                node: NodeId(4),
            },
            TraceEvent::NodeWake {
                t: 15,
                node: NodeId(4),
            },
            TraceEvent::NodeKill {
                t: 16,
                node: NodeId(4),
            },
            TraceEvent::Energy {
                t: 17,
                node: NodeId(4),
                consumed_j: 0.125,
            },
        ];
        for ev in events {
            let line = ev.to_json().to_string();
            let back = TraceEvent::from_json_line(&line).unwrap_or_else(|e| {
                panic!("decode failed for {line}: {e}");
            });
            assert_eq!(back, ev, "{line}");
        }
    }

    #[test]
    fn decoder_rejects_malformed_lines() {
        assert!(TraceEvent::from_json_line(r#"{"ev":"warp","t":1}"#).is_err());
        assert!(TraceEvent::from_json_line(r#"{"t":1}"#).is_err());
        assert!(TraceEvent::from_json_line(r#"{"ev":"rx","t":1,"seq":2}"#).is_err());
        assert!(TraceEvent::from_json_line(
            r#"{"ev":"drop","t":1,"seq":2,"node":3,"cause":"gremlin"}"#
        )
        .is_err());
        assert!(TraceEvent::from_json_line("not json").is_err());
    }

    #[test]
    fn drop_carries_cause_string() {
        let ev = TraceEvent::Drop {
            t: 1,
            seq: 2,
            node: NodeId(9),
            cause: DropCause::OutOfRange,
        };
        let s = ev.to_json().to_string();
        assert!(s.contains(r#""cause":"out_of_range""#), "{s}");
        assert_eq!(ev.name(), "drop");
        assert_eq!(ev.t(), 1);
    }
}
