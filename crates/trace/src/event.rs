//! The structured event model.
//!
//! One [`TraceEvent`] per observable simulator fact. Events are small
//! `Copy` values — no heap allocation happens on the emitting side —
//! and every variant carries the simulation time `t` (microseconds) as
//! its first field. Serialisation to a single JSON object per event
//! (fixed key order, so output is byte-deterministic) lives here too.

use wmsn_util::json::Json;
use wmsn_util::NodeId;

/// Radio tier of a traced frame. Mirrors the simulator's `Tier` without
/// depending on it (the sim crate depends on this crate, not the other
/// way round).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceTier {
    /// Low-power sensor tier (ZigBee-class).
    Sensor,
    /// Mesh backbone tier (WiFi-class).
    Mesh,
}

impl TraceTier {
    /// Stable string form used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceTier::Sensor => "sensor",
            TraceTier::Mesh => "mesh",
        }
    }
}

/// Frame kind of a traced transmission. Mirrors the simulator's
/// `PacketKind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Routing-control frame.
    Control,
    /// Application data frame.
    Data,
    /// Security-protocol frame.
    Security,
}

impl TraceKind {
    /// Stable string form used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Control => "control",
            TraceKind::Data => "data",
            TraceKind::Security => "security",
        }
    }
}

/// Why a scheduled reception never reached the behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropCause {
    /// Overlapping airtime at the receiver (collision model).
    Collision,
    /// Random medium loss.
    Loss,
    /// Receiver was dead (or asleep) at arrival time.
    Dead,
    /// Unicast link destination was outside the sender's radio range.
    OutOfRange,
    /// Receiver's battery died paying the receive cost.
    Energy,
}

impl DropCause {
    /// Stable string form used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            DropCause::Collision => "collision",
            DropCause::Loss => "loss",
            DropCause::Dead => "dead",
            DropCause::OutOfRange => "out_of_range",
            DropCause::Energy => "energy",
        }
    }
}

/// One structured simulator event. All variants are `Copy`; times are
/// simulation microseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A frame left the antenna.
    TxStart {
        /// Simulation time.
        t: u64,
        /// World-unique frame sequence number.
        seq: u64,
        /// Transmitting node.
        src: NodeId,
        /// Link-layer destination (`None` = broadcast).
        dst: Option<NodeId>,
        /// Radio tier.
        tier: TraceTier,
        /// Frame kind.
        kind: TraceKind,
        /// On-air size in bytes.
        bytes: u32,
    },
    /// CSMA found the channel busy; the frame was re-enqueued with
    /// backoff (the lifecycle "enqueue" event).
    TxDefer {
        /// Simulation time.
        t: u64,
        /// Deferring node.
        src: NodeId,
        /// Radio tier.
        tier: TraceTier,
        /// Backoff attempt number (0-based).
        attempt: u8,
    },
    /// CSMA exhausted its backoff attempts; the frame was abandoned
    /// before ever getting a sequence number.
    TxGiveUp {
        /// Simulation time.
        t: u64,
        /// Abandoning node.
        src: NodeId,
        /// Radio tier.
        tier: TraceTier,
    },
    /// A frame was received intact and passed to the behaviour.
    Rx {
        /// Simulation time.
        t: u64,
        /// Frame sequence number.
        seq: u64,
        /// Receiving node.
        node: NodeId,
    },
    /// A scheduled reception was dropped.
    Drop {
        /// Simulation time.
        t: u64,
        /// Frame sequence number.
        seq: u64,
        /// Would-be receiver.
        node: NodeId,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// A protocol forwarded (or originated, `hops == 1`) an application
    /// message.
    Forward {
        /// Simulation time.
        t: u64,
        /// Forwarding node.
        node: NodeId,
        /// Message originator.
        origin: NodeId,
        /// Application message id.
        msg_id: u64,
        /// Next hop (`None` = broadcast / unknown).
        next: Option<NodeId>,
        /// Hop count after this transmission.
        hops: u32,
    },
    /// An application message reached its final destination.
    Deliver {
        /// Simulation time.
        t: u64,
        /// Destination node.
        node: NodeId,
        /// Message originator.
        origin: NodeId,
        /// Application message id.
        msg_id: u64,
        /// Radio hops traversed.
        hops: u32,
        /// End-to-end latency in microseconds.
        latency_us: u64,
    },
    /// SPR/MLR route discovery: an RREQ was originated
    /// (`forwarded == false`) or re-flooded (`forwarded == true`).
    RreqFlood {
        /// Simulation time.
        t: u64,
        /// Flooding node.
        node: NodeId,
        /// Discovery originator.
        origin: NodeId,
        /// Request id (per-originator).
        req_id: u64,
        /// Whether this is a relay of someone else's RREQ.
        forwarded: bool,
    },
    /// A cached route answered an RREQ without reaching a gateway —
    /// the paper's §5.2 optimisation.
    CacheReply {
        /// Simulation time.
        t: u64,
        /// Answering node.
        node: NodeId,
        /// Discovery originator.
        origin: NodeId,
        /// Request id.
        req_id: u64,
        /// Gateway the cached route leads to.
        gateway: NodeId,
        /// Gateway place index.
        place: u16,
    },
    /// A route was installed (RREP accepted into the routing table).
    RouteInstall {
        /// Simulation time.
        t: u64,
        /// Installing node.
        node: NodeId,
        /// Route's gateway.
        gateway: NodeId,
        /// Gateway place index.
        place: u16,
        /// Route length in hops.
        hops: u32,
        /// Bottleneck residual energy (per-mille) along the route —
        /// the MLR term that justifies the choice.
        energy_pm: u16,
    },
    /// MLR picked a route for a data message; the recorded terms are
    /// the ones the selection policy weighed.
    RouteSelect {
        /// Simulation time.
        t: u64,
        /// Selecting node.
        node: NodeId,
        /// Chosen gateway.
        gateway: NodeId,
        /// Chosen place index.
        place: u16,
        /// Route length in hops.
        hops: u32,
        /// Bottleneck residual energy (per-mille).
        energy_pm: u16,
    },
    /// A gateway occupied a (new) place at a round boundary.
    GatewayMove {
        /// Simulation time.
        t: u64,
        /// Moving gateway.
        gateway: NodeId,
        /// New place index.
        place: u16,
    },
    /// A node's position changed.
    NodeMove {
        /// Simulation time.
        t: u64,
        /// Moved node.
        node: NodeId,
        /// New x coordinate (metres).
        x: f64,
        /// New y coordinate (metres).
        y: f64,
    },
    /// A node's radio was put to sleep.
    NodeSleep {
        /// Simulation time.
        t: u64,
        /// Sleeping node.
        node: NodeId,
    },
    /// A node was woken (or revived).
    NodeWake {
        /// Simulation time.
        t: u64,
        /// Woken node.
        node: NodeId,
    },
    /// A node was killed (battery drain or fault injection).
    NodeKill {
        /// Simulation time.
        t: u64,
        /// Killed node.
        node: NodeId,
    },
    /// A node's cumulative energy consumption changed.
    Energy {
        /// Simulation time.
        t: u64,
        /// Charged node.
        node: NodeId,
        /// Total joules consumed so far (0 for unlimited batteries).
        consumed_j: f64,
    },
}

fn id(n: NodeId) -> Json {
    Json::from(n.0 as u64)
}

fn opt_id(n: Option<NodeId>) -> Json {
    match n {
        Some(n) => id(n),
        None => Json::Null,
    }
}

impl TraceEvent {
    /// Stable name of this event's variant — the `"ev"` field of the
    /// JSONL form and the key of [`crate::CountingSink`] tallies.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::TxStart { .. } => "tx_start",
            TraceEvent::TxDefer { .. } => "tx_defer",
            TraceEvent::TxGiveUp { .. } => "tx_giveup",
            TraceEvent::Rx { .. } => "rx",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Forward { .. } => "forward",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::RreqFlood { .. } => "rreq_flood",
            TraceEvent::CacheReply { .. } => "cache_reply",
            TraceEvent::RouteInstall { .. } => "route_install",
            TraceEvent::RouteSelect { .. } => "route_select",
            TraceEvent::GatewayMove { .. } => "gateway_move",
            TraceEvent::NodeMove { .. } => "node_move",
            TraceEvent::NodeSleep { .. } => "node_sleep",
            TraceEvent::NodeWake { .. } => "node_wake",
            TraceEvent::NodeKill { .. } => "node_kill",
            TraceEvent::Energy { .. } => "energy",
        }
    }

    /// Serialise to one flat JSON object with fixed key order
    /// (`ev`, `t`, then variant fields) — the JSONL wire form.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> =
            vec![("ev", Json::from(self.name())), ("t", Json::from(self.t()))];
        match *self {
            TraceEvent::TxStart {
                seq,
                src,
                dst,
                tier,
                kind,
                bytes,
                ..
            } => {
                fields.push(("seq", Json::from(seq)));
                fields.push(("src", id(src)));
                fields.push(("dst", opt_id(dst)));
                fields.push(("tier", Json::from(tier.as_str())));
                fields.push(("kind", Json::from(kind.as_str())));
                fields.push(("bytes", Json::from(bytes as u64)));
            }
            TraceEvent::TxDefer {
                src, tier, attempt, ..
            } => {
                fields.push(("src", id(src)));
                fields.push(("tier", Json::from(tier.as_str())));
                fields.push(("attempt", Json::from(attempt as u64)));
            }
            TraceEvent::TxGiveUp { src, tier, .. } => {
                fields.push(("src", id(src)));
                fields.push(("tier", Json::from(tier.as_str())));
            }
            TraceEvent::Rx { seq, node, .. } => {
                fields.push(("seq", Json::from(seq)));
                fields.push(("node", id(node)));
            }
            TraceEvent::Drop {
                seq, node, cause, ..
            } => {
                fields.push(("seq", Json::from(seq)));
                fields.push(("node", id(node)));
                fields.push(("cause", Json::from(cause.as_str())));
            }
            TraceEvent::Forward {
                node,
                origin,
                msg_id,
                next,
                hops,
                ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("origin", id(origin)));
                fields.push(("msg_id", Json::from(msg_id)));
                fields.push(("next", opt_id(next)));
                fields.push(("hops", Json::from(hops as u64)));
            }
            TraceEvent::Deliver {
                node,
                origin,
                msg_id,
                hops,
                latency_us,
                ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("origin", id(origin)));
                fields.push(("msg_id", Json::from(msg_id)));
                fields.push(("hops", Json::from(hops as u64)));
                fields.push(("latency_us", Json::from(latency_us)));
            }
            TraceEvent::RreqFlood {
                node,
                origin,
                req_id,
                forwarded,
                ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("origin", id(origin)));
                fields.push(("req_id", Json::from(req_id)));
                fields.push(("forwarded", Json::from(forwarded)));
            }
            TraceEvent::CacheReply {
                node,
                origin,
                req_id,
                gateway,
                place,
                ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("origin", id(origin)));
                fields.push(("req_id", Json::from(req_id)));
                fields.push(("gateway", id(gateway)));
                fields.push(("place", Json::from(place as u64)));
            }
            TraceEvent::RouteInstall {
                node,
                gateway,
                place,
                hops,
                energy_pm,
                ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("gateway", id(gateway)));
                fields.push(("place", Json::from(place as u64)));
                fields.push(("hops", Json::from(hops as u64)));
                fields.push(("energy_pm", Json::from(energy_pm as u64)));
            }
            TraceEvent::RouteSelect {
                node,
                gateway,
                place,
                hops,
                energy_pm,
                ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("gateway", id(gateway)));
                fields.push(("place", Json::from(place as u64)));
                fields.push(("hops", Json::from(hops as u64)));
                fields.push(("energy_pm", Json::from(energy_pm as u64)));
            }
            TraceEvent::GatewayMove { gateway, place, .. } => {
                fields.push(("gateway", id(gateway)));
                fields.push(("place", Json::from(place as u64)));
            }
            TraceEvent::NodeMove { node, x, y, .. } => {
                fields.push(("node", id(node)));
                fields.push(("x", Json::from(x)));
                fields.push(("y", Json::from(y)));
            }
            TraceEvent::NodeSleep { node, .. }
            | TraceEvent::NodeWake { node, .. }
            | TraceEvent::NodeKill { node, .. } => {
                fields.push(("node", id(node)));
            }
            TraceEvent::Energy {
                node, consumed_j, ..
            } => {
                fields.push(("node", id(node)));
                fields.push(("consumed_j", Json::from(consumed_j)));
            }
        }
        Json::obj(fields)
    }

    /// Simulation time of the event, microseconds.
    pub fn t(&self) -> u64 {
        match *self {
            TraceEvent::TxStart { t, .. }
            | TraceEvent::TxDefer { t, .. }
            | TraceEvent::TxGiveUp { t, .. }
            | TraceEvent::Rx { t, .. }
            | TraceEvent::Drop { t, .. }
            | TraceEvent::Forward { t, .. }
            | TraceEvent::Deliver { t, .. }
            | TraceEvent::RreqFlood { t, .. }
            | TraceEvent::CacheReply { t, .. }
            | TraceEvent::RouteInstall { t, .. }
            | TraceEvent::RouteSelect { t, .. }
            | TraceEvent::GatewayMove { t, .. }
            | TraceEvent::NodeMove { t, .. }
            | TraceEvent::NodeSleep { t, .. }
            | TraceEvent::NodeWake { t, .. }
            | TraceEvent::NodeKill { t, .. }
            | TraceEvent::Energy { t, .. } => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_form_is_compact_and_key_ordered() {
        let ev = TraceEvent::TxStart {
            t: 42,
            seq: 7,
            src: NodeId(3),
            dst: None,
            tier: TraceTier::Sensor,
            kind: TraceKind::Data,
            bytes: 32,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"ev":"tx_start","t":42,"seq":7,"src":3,"dst":null,"tier":"sensor","kind":"data","bytes":32}"#
        );
    }

    #[test]
    fn drop_carries_cause_string() {
        let ev = TraceEvent::Drop {
            t: 1,
            seq: 2,
            node: NodeId(9),
            cause: DropCause::OutOfRange,
        };
        let s = ev.to_json().to_string();
        assert!(s.contains(r#""cause":"out_of_range""#), "{s}");
        assert_eq!(ev.name(), "drop");
        assert_eq!(ev.t(), 1);
    }
}
