//! Disk-backed segmented trace captures with a block index.
//!
//! The flat binary capture (see [`crate::frame`]) is just header +
//! frames: reading *anything* out of it means decoding every frame, and
//! the only practical consumer pattern at n=100k scale —
//! [`crate::frame::read_binary_trace`] — materialises tens of millions
//! of events in memory. This module is the scale-ready form: the same
//! 64-byte frames, grouped into fixed-size **segments**, with a
//! per-segment index entry and a footer that lets a reader seek — so
//! queries run in O(one segment) memory and skip whole segments the
//! index proves irrelevant.
//!
//! # File layout (version 2, little-endian)
//!
//! ```text
//! header    16 B  CAPTURE_MAGIC (8) · version u32 · frame_len u32
//! segment   N×64 B back-to-back frames (frame codec identical to the
//!                 flat capture — PR 7's encode/decode is reused as-is)
//! ...             (last segment may hold fewer than segment_frames)
//! extension       optional (absent iff trailer ext_offset == 0):
//!                   EXT_MAGIC (8) · checkpoints u32 · alerts_len u32
//!                   · per checkpoint: seg_index u64 · blob_len u32 · blob
//!                   · alerts JSONL bytes
//! directory       one SEGMENT_ENTRY_LEN-byte entry per segment:
//!                   offset u64 · frames u32 · at_min u64 · at_max u64
//!                   · kind_counts [u32; TAG_COUNT] · node_filter [u8; 32]
//! trailer   48 B  dir_offset u64 · segments u64 · frames u64
//!                 · frames_dropped u64 · ext_offset u64 · TRAILER_MAGIC (8)
//! ```
//!
//! The trailer is fixed-size and *last*, so a reader opens a capture by
//! reading the final 48 bytes, seeking to the directory, and loading
//! `segments × 128` bytes of index — never the data. Because the
//! directory and trailer are written only by [`CaptureWriter::finish`],
//! a capture that was cut off mid-write fails validation loudly instead
//! of silently truncating a forensic record. The writer is append-only
//! (no seeks), so it can sit behind a `BufWriter` on the ring pipeline's
//! drain thread.
//!
//! Version 1 files are read unchanged: their trailer wrote the
//! `ext_offset` slot as a reserved zero, which version 2 defines as "no
//! extension block". The extension block carries opaque **checkpoint**
//! blobs keyed by segment index (the health plane stores serialized
//! detector-bank state there — this crate never interprets the bytes)
//! plus an embedded alert-JSONL stream, both written between the frame
//! data and the directory so the writer stays append-only.
//!
//! # Compacted segments
//!
//! `wmsn-trace compact` rewrites old segments down to their directory
//! summaries: a compacted segment keeps its full index entry (frame
//! count, `at` range, kind counts, node filter — so index-only queries
//! like [`capture_counts`] stay *exact*) but its frame data is gone
//! from the file. The entry's `offset` field is the
//! [`COMPACTED_OFFSET`] sentinel. Any frame-level read that touches a
//! compacted segment is a **hard error**, never a silently partial
//! answer.
//!
//! # The index is a pruner, not an oracle
//!
//! Each entry carries the segment's `at` range, exact per-kind event
//! counts, and a 256-bit bloom filter over every node id its events
//! mention. [`CaptureReader::scan`] skips a segment only when the index
//! *proves* no frame can match ([`ScanFilter`]); within a scanned
//! segment every frame is still checked exactly, so query answers are
//! identical to a full decode — the index only buys speed, never
//! changes results.
//!
//! # Dropped frames are part of the record
//!
//! The ring pipeline can discard frames under
//! [`crate::BackpressurePolicy::DropNewest`]. A capture recorded that
//! way is a *sample*, not a transcript — so the drop count rides in the
//! trailer ([`CaptureWriter::set_frames_dropped`]) and `wmsn-trace`
//! warns on stderr before answering queries from such a file.

use crate::event::TraceEvent;
use crate::frame::{decode_frame, encode_frame, event_tag, tag_name, FRAME_LEN, TAG_COUNT};
use crate::replay::{DropRecord, MessagePath, PathHop};
use crate::sink::TraceSink;
use std::any::Any;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use wmsn_util::NodeId;

/// Magic bytes opening a segmented trace capture (`S` = segmented; the
/// flat capture uses `WMSNTRB\0`).
pub const CAPTURE_MAGIC: [u8; 8] = *b"WMSNTRS\0";
/// Magic bytes closing the capture trailer.
pub const TRAILER_MAGIC: [u8; 8] = *b"WMSNTRF\0";
/// Magic bytes opening the optional extension block (checkpoints +
/// embedded alerts).
pub const EXT_MAGIC: [u8; 8] = *b"WMSNTRX\0";
/// Capture container version written by [`CaptureWriter`]. Version 1
/// (no extension block, no compacted segments) is still read.
pub const CAPTURE_VERSION: u32 = 2;
/// Sentinel `offset` of a compacted segment's directory entry: the
/// index entry is intact but the frame data has been removed.
pub const COMPACTED_OFFSET: u64 = u64::MAX;
/// Size of the capture header, bytes (same shape as the flat capture:
/// magic, version, frame length).
pub const CAPTURE_HEADER_LEN: usize = 16;
/// Size of one segment-directory entry, bytes.
pub const SEGMENT_ENTRY_LEN: usize = 128;
/// Size of the capture trailer, bytes.
pub const TRAILER_LEN: usize = 48;
/// Size of the per-segment node-membership bloom filter, bytes (256
/// bits, 2 hash positions per id).
pub const NODE_FILTER_LEN: usize = 32;
/// Default frames per segment: 8192 × 64 B = 512 KiB of data per
/// segment — the unit of both read buffering and index granularity.
pub const DEFAULT_SEGMENT_FRAMES: usize = 8192;

/// Tuning for a capture writer.
#[derive(Clone, Copy, Debug)]
pub struct CaptureConfig {
    /// Frames per segment (the last segment may be shorter). Larger
    /// segments mean fewer index entries but coarser skipping and a
    /// bigger per-segment read buffer.
    pub segment_frames: usize,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig {
            segment_frames: DEFAULT_SEGMENT_FRAMES,
        }
    }
}

/// Final telemetry of one finished capture.
#[derive(Clone, Copy, Debug, Default)]
pub struct CaptureStats {
    /// Frames written.
    pub frames: u64,
    /// Segments written.
    pub segments: u64,
    /// Total file size, bytes (header + data + directory + trailer).
    pub bytes: u64,
    /// Producer-side ring drops recorded in the trailer.
    pub frames_dropped: u64,
}

/// One segment's directory entry: where it is, what it spans, and
/// conservative membership summaries for index-driven skipping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Byte offset of the segment's first frame.
    pub offset: u64,
    /// Frames in the segment.
    pub frames: u32,
    /// Minimum causal `at` stamp of any frame in the segment.
    pub at_min: u64,
    /// Maximum causal `at` stamp of any frame in the segment.
    pub at_max: u64,
    /// Exact event count per wire tag (index `tag - 1`).
    pub kind_counts: [u32; TAG_COUNT],
    /// Bloom filter over every node id mentioned by any frame.
    pub node_filter: [u8; NODE_FILTER_LEN],
}

impl SegmentMeta {
    fn empty(offset: u64) -> SegmentMeta {
        SegmentMeta {
            offset,
            frames: 0,
            at_min: u64::MAX,
            at_max: 0,
            kind_counts: [0; TAG_COUNT],
            node_filter: [0; NODE_FILTER_LEN],
        }
    }

    /// Whether the segment *may* contain a frame mentioning `id`.
    /// `false` is definitive (no false negatives); `true` is a maybe.
    pub fn maybe_mentions(&self, id: NodeId) -> bool {
        let (a, b) = filter_positions(id);
        self.node_filter[a / 8] & (1 << (a % 8)) != 0
            && self.node_filter[b / 8] & (1 << (b % 8)) != 0
    }

    /// Exact count of frames with wire tag `tag` (0 for unknown tags).
    pub fn count_of_tag(&self, tag: u8) -> u64 {
        match tag {
            1..=17 => self.kind_counts[tag as usize - 1] as u64,
            _ => 0,
        }
    }

    /// Whether this segment's frame data has been removed by
    /// compaction (the index entry itself is still exact).
    pub fn is_compacted(&self) -> bool {
        self.offset == COMPACTED_OFFSET
    }
}

/// The two bloom bit positions (0..256) for a node id — a SplitMix64
/// finalizer over the id, deterministic across platforms.
fn filter_positions(id: NodeId) -> (usize, usize) {
    let mut x = (id.0 as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x & 0xFF) as usize, ((x >> 8) & 0xFF) as usize)
}

fn filter_insert(filter: &mut [u8; NODE_FILTER_LEN], id: NodeId) {
    let (a, b) = filter_positions(id);
    filter[a / 8] |= 1 << (a % 8);
    filter[b / 8] |= 1 << (b % 8);
}

/// Visit every node id an event mentions (sender, receiver, origin,
/// next hop, gateway — whichever the variant carries). Exhaustive over
/// the event enum so a new variant is a compile error here, not a
/// silent index hole.
fn visit_event_nodes(ev: &TraceEvent, mut f: impl FnMut(NodeId)) {
    match *ev {
        TraceEvent::TxStart { src, dst, .. } => {
            f(src);
            if let Some(d) = dst {
                f(d);
            }
        }
        TraceEvent::TxDefer { src, .. } | TraceEvent::TxGiveUp { src, .. } => f(src),
        TraceEvent::Rx { node, .. } | TraceEvent::Drop { node, .. } => f(node),
        TraceEvent::Forward {
            node, origin, next, ..
        } => {
            f(node);
            f(origin);
            if let Some(n) = next {
                f(n);
            }
        }
        TraceEvent::Deliver { node, origin, .. } | TraceEvent::RreqFlood { node, origin, .. } => {
            f(node);
            f(origin);
        }
        TraceEvent::CacheReply {
            node,
            origin,
            gateway,
            ..
        } => {
            f(node);
            f(origin);
            f(gateway);
        }
        TraceEvent::RouteInstall { node, gateway, .. }
        | TraceEvent::RouteSelect { node, gateway, .. } => {
            f(node);
            f(gateway);
        }
        TraceEvent::GatewayMove { gateway, .. } => f(gateway),
        TraceEvent::NodeMove { node, .. }
        | TraceEvent::NodeSleep { node, .. }
        | TraceEvent::NodeWake { node, .. }
        | TraceEvent::NodeKill { node, .. }
        | TraceEvent::Energy { node, .. } => f(node),
    }
}

/// Whether an event mentions `id` in any of its node fields.
fn event_mentions(ev: &TraceEvent, id: NodeId) -> bool {
    let mut hit = false;
    visit_event_nodes(ev, |n| hit |= n == id);
    hit
}

/// Whether `head` (the first bytes of a file) opens a segmented
/// capture.
pub fn is_segmented_capture(head: &[u8]) -> bool {
    head.len() >= CAPTURE_MAGIC.len() && head[..CAPTURE_MAGIC.len()] == CAPTURE_MAGIC
}

// ------------------------------------------------------------ writer --

/// Append-only segmented capture writer. Frames go straight to the
/// writer as they arrive; the directory and trailer are written by
/// [`CaptureWriter::finish`]. No seeking, so any `Write` works.
#[derive(Debug)]
pub struct CaptureWriter<W: Write> {
    w: W,
    segment_frames: usize,
    pos: u64,
    dir: Vec<SegmentMeta>,
    cur: Option<SegmentMeta>,
    frames: u64,
    frames_dropped: u64,
    /// `(seg_index, blob)` checkpoint entries for the extension block.
    checkpoints: Vec<(u64, Vec<u8>)>,
    /// Embedded alert JSONL for the extension block.
    alerts_jsonl: String,
}

impl<W: Write> CaptureWriter<W> {
    /// Wrap a writer; the capture header is written immediately.
    pub fn new(mut w: W, cfg: CaptureConfig) -> std::io::Result<CaptureWriter<W>> {
        w.write_all(&CAPTURE_MAGIC)?;
        w.write_all(&CAPTURE_VERSION.to_le_bytes())?;
        w.write_all(&(FRAME_LEN as u32).to_le_bytes())?;
        Ok(CaptureWriter {
            w,
            segment_frames: cfg.segment_frames.max(1),
            pos: CAPTURE_HEADER_LEN as u64,
            dir: Vec::new(),
            cur: None,
            frames: 0,
            frames_dropped: 0,
            checkpoints: Vec::new(),
            alerts_jsonl: String::new(),
        })
    }

    /// Append one event (with its causal `(at, key)` stamp), sealing a
    /// segment whenever the configured frame count fills. Returns
    /// `true` when this push sealed a segment — the hook checkpointing
    /// sinks use to snapshot detector state at segment boundaries.
    pub fn push(&mut self, ev: &TraceEvent, at: u64, key: u64) -> std::io::Result<bool> {
        let frame = encode_frame(ev, at, key);
        let pos = self.pos;
        let cur = self.cur.get_or_insert_with(|| SegmentMeta::empty(pos));
        cur.frames += 1;
        cur.at_min = cur.at_min.min(at);
        cur.at_max = cur.at_max.max(at);
        cur.kind_counts[event_tag(ev) as usize - 1] += 1;
        visit_event_nodes(ev, |n| filter_insert(&mut cur.node_filter, n));
        let full = cur.frames as usize >= self.segment_frames;
        self.w.write_all(&frame)?;
        self.pos += FRAME_LEN as u64;
        self.frames += 1;
        if full {
            self.seal();
        }
        Ok(full)
    }

    fn seal(&mut self) {
        if let Some(m) = self.cur.take() {
            self.dir.push(m);
        }
    }

    /// Segments sealed so far (the index the next sealed segment will
    /// get — useful for keying checkpoints).
    pub fn segments_sealed(&self) -> u64 {
        self.dir.len() as u64
    }

    /// Attach an opaque checkpoint blob keyed by segment index:
    /// "detector state after segments `[0..seg_index)`". Stored in the
    /// extension block by [`CaptureWriter::finish`]; this layer never
    /// interprets the bytes.
    pub fn add_checkpoint(&mut self, seg_index: u64, blob: Vec<u8>) {
        self.checkpoints.push((seg_index, blob));
    }

    /// Embed the run's alert JSONL stream in the extension block, so
    /// `explain <alert-index>` resolves alerts without a replay.
    pub fn set_alerts_jsonl(&mut self, jsonl: String) {
        self.alerts_jsonl = jsonl;
    }

    /// Copy one segment's frame data verbatim (compaction's retained
    /// path): `bytes` must be exactly `meta.frames` encoded frames. The
    /// entry keeps `meta`'s summaries with the offset rebased to this
    /// file. Seals any partial streamed segment first.
    pub fn push_segment_raw(&mut self, meta: &SegmentMeta, bytes: &[u8]) -> std::io::Result<()> {
        if bytes.len() != meta.frames as usize * FRAME_LEN {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "segment data is {} bytes, entry says {} frames",
                    bytes.len(),
                    meta.frames
                ),
            ));
        }
        self.seal();
        self.w.write_all(bytes)?;
        let mut m = *meta;
        m.offset = self.pos;
        self.pos += bytes.len() as u64;
        self.frames += m.frames as u64;
        self.dir.push(m);
        Ok(())
    }

    /// Append a compacted directory entry (compaction's dropped path):
    /// `meta`'s summaries are kept — so index-only queries stay exact —
    /// but no frame data is written and the entry's offset becomes the
    /// [`COMPACTED_OFFSET`] sentinel. Seals any partial segment first.
    pub fn push_compacted(&mut self, meta: &SegmentMeta) {
        self.seal();
        let mut m = *meta;
        m.offset = COMPACTED_OFFSET;
        self.frames += m.frames as u64;
        self.dir.push(m);
    }

    /// Record the producer-side drop count carried into the trailer
    /// (see [`CaptureStats::frames_dropped`]).
    pub fn set_frames_dropped(&mut self, n: u64) {
        self.frames_dropped = n;
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.frames
    }

    /// Flush buffered data frames (directory and trailer are only
    /// written by [`CaptureWriter::finish`]).
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.w.flush()
    }

    /// Seal the partial segment, write the extension block (if any
    /// checkpoints or alerts were attached), the directory and the
    /// trailer, flush, and hand back the writer plus final telemetry.
    pub fn finish(mut self) -> std::io::Result<(W, CaptureStats)> {
        self.seal();
        let ext_offset = if self.checkpoints.is_empty() && self.alerts_jsonl.is_empty() {
            0u64
        } else {
            let start = self.pos;
            self.w.write_all(&EXT_MAGIC)?;
            self.w
                .write_all(&(self.checkpoints.len() as u32).to_le_bytes())?;
            self.w
                .write_all(&(self.alerts_jsonl.len() as u32).to_le_bytes())?;
            self.pos += 16;
            for (seg, blob) in &self.checkpoints {
                self.w.write_all(&seg.to_le_bytes())?;
                self.w.write_all(&(blob.len() as u32).to_le_bytes())?;
                self.w.write_all(blob)?;
                self.pos += 12 + blob.len() as u64;
            }
            self.w.write_all(self.alerts_jsonl.as_bytes())?;
            self.pos += self.alerts_jsonl.len() as u64;
            start
        };
        let dir_offset = self.pos;
        let mut entry = [0u8; SEGMENT_ENTRY_LEN];
        for m in &self.dir {
            entry[0..8].copy_from_slice(&m.offset.to_le_bytes());
            entry[8..12].copy_from_slice(&m.frames.to_le_bytes());
            entry[12..20].copy_from_slice(&m.at_min.to_le_bytes());
            entry[20..28].copy_from_slice(&m.at_max.to_le_bytes());
            for (i, c) in m.kind_counts.iter().enumerate() {
                entry[28 + 4 * i..32 + 4 * i].copy_from_slice(&c.to_le_bytes());
            }
            entry[96..128].copy_from_slice(&m.node_filter);
            self.w.write_all(&entry)?;
            self.pos += SEGMENT_ENTRY_LEN as u64;
        }
        self.w.write_all(&dir_offset.to_le_bytes())?;
        self.w.write_all(&(self.dir.len() as u64).to_le_bytes())?;
        self.w.write_all(&self.frames.to_le_bytes())?;
        self.w.write_all(&self.frames_dropped.to_le_bytes())?;
        self.w.write_all(&ext_offset.to_le_bytes())?;
        self.w.write_all(&TRAILER_MAGIC)?;
        self.pos += TRAILER_LEN as u64;
        self.w.flush()?;
        let stats = CaptureStats {
            frames: self.frames,
            segments: self.dir.len() as u64,
            bytes: self.pos,
            frames_dropped: self.frames_dropped,
        };
        Ok((self.w, stats))
    }
}

/// File-backed capture sink, installable wherever a [`TraceSink`] goes
/// (typically downstream of a `RingSink`, so the segment bookkeeping
/// and disk writes run on the drain thread). Like every other sink,
/// write errors are swallowed — tracing must never alter simulation
/// behaviour — but a failed capture stops counting frames and
/// [`CaptureSink::finalize`] reports `None`.
#[derive(Debug)]
pub struct CaptureSink {
    w: Option<CaptureWriter<BufWriter<File>>>,
    path: PathBuf,
    failed: bool,
    stats: Option<CaptureStats>,
}

impl CaptureSink {
    /// Create (truncating) a capture file at `path`.
    pub fn create(path: impl Into<PathBuf>, cfg: CaptureConfig) -> std::io::Result<CaptureSink> {
        let path = path.into();
        let w = CaptureWriter::new(BufWriter::new(File::create(&path)?), cfg)?;
        Ok(CaptureSink {
            w: Some(w),
            path,
            failed: false,
            stats: None,
        })
    }

    /// The capture file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.w.as_ref().map_or(0, CaptureWriter::frames_written)
    }

    /// Record the producer-side ring drop count in the trailer.
    pub fn set_frames_dropped(&mut self, n: u64) {
        if let Some(w) = &mut self.w {
            w.set_frames_dropped(n);
        }
    }

    /// Write the directory and trailer (idempotent). `None` if any
    /// write failed — the capture file is not trustworthy.
    pub fn finalize(&mut self) -> Option<CaptureStats> {
        if let Some(w) = self.w.take() {
            match w.finish() {
                Ok((_, stats)) if !self.failed => self.stats = Some(stats),
                _ => self.failed = true,
            }
        }
        self.stats
    }
}

impl Drop for CaptureSink {
    /// Best-effort footer on drop, so a capture is seekable even if the
    /// owner forgot to finalize.
    fn drop(&mut self) {
        let _ = self.finalize();
    }
}

impl TraceSink for CaptureSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.record_keyed(ev, ev.t(), 0);
    }
    fn record_keyed(&mut self, ev: &TraceEvent, at: u64, key: u64) {
        if self.failed {
            return;
        }
        if let Some(w) = &mut self.w {
            if w.push(ev, at, key).is_err() {
                self.failed = true;
            }
        }
    }
    fn flush(&mut self) {
        if let Some(w) = &mut self.w {
            let _ = w.flush();
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ------------------------------------------------------------ reader --

/// Which frames a scan wants. Segment-level checks use the index
/// (conservative: may admit a segment with no matches, never skips one
/// with a match); frame-level checks are exact.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanFilter {
    at_range: Option<(u64, u64)>,
    node: Option<NodeId>,
    kind_mask: Option<u32>,
}

impl ScanFilter {
    /// Match every frame.
    pub fn all() -> ScanFilter {
        ScanFilter::default()
    }

    /// Restrict to frames with causal stamp `lo <= at <= hi`.
    pub fn with_at_range(mut self, lo: u64, hi: u64) -> ScanFilter {
        self.at_range = Some((lo, hi));
        self
    }

    /// Restrict to frames whose event mentions `node` in any field.
    pub fn with_node(mut self, node: NodeId) -> ScanFilter {
        self.node = Some(node);
        self
    }

    /// Restrict to the named event kinds (names as in
    /// [`TraceEvent::name`]; unknown names match nothing).
    pub fn with_kind_names(mut self, names: &[&str]) -> ScanFilter {
        let mut mask = 0u32;
        for t in 1..=TAG_COUNT as u8 {
            if tag_name(t).is_some_and(|n| names.contains(&n)) {
                mask |= 1 << (t - 1);
            }
        }
        self.kind_mask = Some(mask);
        self
    }

    fn admits_segment(&self, m: &SegmentMeta) -> bool {
        if let Some((lo, hi)) = self.at_range {
            if m.at_max < lo || m.at_min > hi {
                return false;
            }
        }
        if let Some(n) = self.node {
            if !m.maybe_mentions(n) {
                return false;
            }
        }
        if let Some(mask) = self.kind_mask {
            let any = (0..TAG_COUNT).any(|i| mask & (1 << i) != 0 && m.kind_counts[i] > 0);
            if !any {
                return false;
            }
        }
        true
    }

    fn admits_frame(&self, ev: &TraceEvent, at: u64) -> bool {
        if let Some((lo, hi)) = self.at_range {
            if at < lo || at > hi {
                return false;
            }
        }
        if let Some(mask) = self.kind_mask {
            if mask & (1 << (event_tag(ev) - 1)) == 0 {
                return false;
            }
        }
        if let Some(n) = self.node {
            if !event_mentions(ev, n) {
                return false;
            }
        }
        true
    }
}

/// What one scan did — the observable value of the index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Segments whose frames were decoded.
    pub segments_scanned: u64,
    /// Segments the index proved could not match.
    pub segments_skipped: u64,
    /// Frames decoded.
    pub frames_decoded: u64,
    /// Frames that matched the filter (= callback invocations).
    pub frames_matched: u64,
}

/// Extension-block contents: `(seg_index, blob)` checkpoint entries
/// plus the embedded alert JSONL.
type ExtensionContents = (Vec<(u64, Vec<u8>)>, String);

/// Parse the extension block: `(checkpoints, alerts_jsonl)`. The block
/// must consume `ext` exactly — trailing or missing bytes are
/// corruption, not slack.
fn parse_extension(ext: &[u8]) -> Result<ExtensionContents, String> {
    if ext.len() < 16 || ext[0..8] != EXT_MAGIC {
        return Err("corrupt extension block: bad magic".into());
    }
    let n_checkpoints = u32::from_le_bytes(ext[8..12].try_into().unwrap()) as usize;
    let alerts_len = u32::from_le_bytes(ext[12..16].try_into().unwrap()) as usize;
    let mut pos = 16usize;
    let mut checkpoints = Vec::with_capacity(n_checkpoints);
    for i in 0..n_checkpoints {
        if ext.len() < pos + 12 {
            return Err(format!(
                "corrupt extension block: short checkpoint header {i}"
            ));
        }
        let seg = u64::from_le_bytes(ext[pos..pos + 8].try_into().unwrap());
        let blob_len = u32::from_le_bytes(ext[pos + 8..pos + 12].try_into().unwrap()) as usize;
        pos += 12;
        if ext.len() < pos + blob_len {
            return Err(format!(
                "corrupt extension block: short checkpoint blob {i}"
            ));
        }
        checkpoints.push((seg, ext[pos..pos + blob_len].to_vec()));
        pos += blob_len;
    }
    if ext.len() != pos + alerts_len {
        return Err(format!(
            "corrupt extension block: {} bytes, parsed {pos} + {alerts_len} alert bytes",
            ext.len()
        ));
    }
    let alerts = std::str::from_utf8(&ext[pos..])
        .map_err(|e| format!("corrupt extension block: alerts not UTF-8: {e}"))?
        .to_string();
    Ok((checkpoints, alerts))
}

/// Seekable reader over a segmented capture: validates the footer and
/// directory up front, then serves index-driven segment-at-a-time
/// scans. Peak memory is one segment's data plus the directory,
/// independent of capture size.
#[derive(Debug)]
pub struct CaptureReader<R: Read + Seek> {
    r: R,
    dir: Vec<SegmentMeta>,
    frames: u64,
    frames_dropped: u64,
    bytes: u64,
    buf: Vec<u8>,
    version: u32,
    checkpoints: Vec<(u64, Vec<u8>)>,
    alerts_jsonl: String,
}

impl CaptureReader<BufReader<File>> {
    /// Open a capture file.
    pub fn open(path: impl AsRef<Path>) -> Result<CaptureReader<BufReader<File>>, String> {
        let f = File::open(path.as_ref())
            .map_err(|e| format!("open {}: {e}", path.as_ref().display()))?;
        CaptureReader::new(BufReader::new(f))
    }
}

impl<R: Read + Seek> CaptureReader<R> {
    /// Validate header, trailer and directory of a seekable capture.
    pub fn new(mut r: R) -> Result<CaptureReader<R>, String> {
        let mut head = [0u8; CAPTURE_HEADER_LEN];
        r.read_exact(&mut head)
            .map_err(|e| format!("short capture header: {e}"))?;
        if head[0..8] != CAPTURE_MAGIC {
            return Err("bad magic: not a segmented trace capture".into());
        }
        let version = u32::from_le_bytes(head[8..12].try_into().unwrap());
        if version != 1 && version != CAPTURE_VERSION {
            return Err(format!(
                "unsupported capture version {version} (expected 1..={CAPTURE_VERSION})"
            ));
        }
        let flen = u32::from_le_bytes(head[12..16].try_into().unwrap()) as usize;
        if flen != FRAME_LEN {
            return Err(format!(
                "unsupported frame length {flen} (expected {FRAME_LEN})"
            ));
        }
        let bytes = r
            .seek(SeekFrom::End(0))
            .map_err(|e| format!("seek error: {e}"))?;
        if bytes < (CAPTURE_HEADER_LEN + TRAILER_LEN) as u64 {
            return Err(format!(
                "capture too short ({bytes} bytes): missing trailer (unfinished write?)"
            ));
        }
        r.seek(SeekFrom::Start(bytes - TRAILER_LEN as u64))
            .map_err(|e| format!("seek error: {e}"))?;
        let mut tr = [0u8; TRAILER_LEN];
        r.read_exact(&mut tr)
            .map_err(|e| format!("short trailer: {e}"))?;
        if tr[40..48] != TRAILER_MAGIC {
            return Err("bad trailer magic: capture not finalized (unfinished write?)".into());
        }
        let dir_offset = u64::from_le_bytes(tr[0..8].try_into().unwrap());
        let segments = u64::from_le_bytes(tr[8..16].try_into().unwrap());
        let frames = u64::from_le_bytes(tr[16..24].try_into().unwrap());
        let frames_dropped = u64::from_le_bytes(tr[24..32].try_into().unwrap());
        let ext_offset = u64::from_le_bytes(tr[32..40].try_into().unwrap());
        let want_len = dir_offset
            .checked_add(segments * SEGMENT_ENTRY_LEN as u64)
            .and_then(|v| v.checked_add(TRAILER_LEN as u64));
        if dir_offset < CAPTURE_HEADER_LEN as u64 || want_len != Some(bytes) {
            return Err(format!(
                "inconsistent trailer: dir_offset {dir_offset}, {segments} segments, file {bytes} bytes"
            ));
        }
        // The frame data region ends where the extension block (if
        // any) starts; otherwise at the directory.
        if ext_offset != 0 && (ext_offset < CAPTURE_HEADER_LEN as u64 || ext_offset >= dir_offset) {
            return Err(format!(
                "inconsistent trailer: extension block at {ext_offset} outside data region (directory at {dir_offset})"
            ));
        }
        let data_end = if ext_offset != 0 {
            ext_offset
        } else {
            dir_offset
        };
        let (checkpoints, alerts_jsonl) = if ext_offset != 0 {
            r.seek(SeekFrom::Start(ext_offset))
                .map_err(|e| format!("seek error: {e}"))?;
            let mut ext = vec![0u8; (dir_offset - ext_offset) as usize];
            r.read_exact(&mut ext)
                .map_err(|e| format!("short extension block: {e}"))?;
            parse_extension(&ext)?
        } else {
            (Vec::new(), String::new())
        };
        r.seek(SeekFrom::Start(dir_offset))
            .map_err(|e| format!("seek error: {e}"))?;
        let mut dir = Vec::with_capacity(segments as usize);
        let mut entry = [0u8; SEGMENT_ENTRY_LEN];
        let mut expected_offset = CAPTURE_HEADER_LEN as u64;
        let mut frame_sum = 0u64;
        for i in 0..segments {
            r.read_exact(&mut entry)
                .map_err(|e| format!("short directory entry {i}: {e}"))?;
            let mut kind_counts = [0u32; TAG_COUNT];
            for (k, c) in kind_counts.iter_mut().enumerate() {
                *c = u32::from_le_bytes(entry[28 + 4 * k..32 + 4 * k].try_into().unwrap());
            }
            let m = SegmentMeta {
                offset: u64::from_le_bytes(entry[0..8].try_into().unwrap()),
                frames: u32::from_le_bytes(entry[8..12].try_into().unwrap()),
                at_min: u64::from_le_bytes(entry[12..20].try_into().unwrap()),
                at_max: u64::from_le_bytes(entry[20..28].try_into().unwrap()),
                kind_counts,
                node_filter: entry[96..128].try_into().unwrap(),
            };
            if m.frames == 0 || (!m.is_compacted() && m.offset != expected_offset) {
                return Err(format!(
                    "corrupt directory: segment {i} at offset {} (expected {expected_offset}), {} frames",
                    m.offset, m.frames
                ));
            }
            // Compacted entries hold no frame data, so the data region
            // does not advance; their frames still count toward the
            // logical total so index-only queries stay exact.
            if !m.is_compacted() {
                expected_offset += m.frames as u64 * FRAME_LEN as u64;
            }
            frame_sum += m.frames as u64;
            dir.push(m);
        }
        if expected_offset != data_end || frame_sum != frames {
            return Err(format!(
                "corrupt directory: data ends at {expected_offset} (expected {data_end}), {frame_sum} frames indexed ({frames} in trailer)"
            ));
        }
        Ok(CaptureReader {
            r,
            dir,
            frames,
            frames_dropped,
            bytes,
            buf: Vec::new(),
            version,
            checkpoints,
            alerts_jsonl,
        })
    }

    /// The segment directory, in file order.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.dir
    }

    /// Total frames in the capture.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Producer-side ring drops recorded at capture time. Non-zero
    /// means the capture is an incomplete sample of the trace stream.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Total file size, bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Container version from the header (1 or [`CAPTURE_VERSION`]).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Embedded detector checkpoints as `(seg_index, blob)` pairs:
    /// "state after segments `[0..seg_index)`". Opaque at this layer;
    /// `wmsn-health` owns the codec.
    pub fn checkpoints(&self) -> &[(u64, Vec<u8>)] {
        &self.checkpoints
    }

    /// The alert JSONL stream embedded at capture time ("" if none).
    pub fn alerts_jsonl(&self) -> &str {
        &self.alerts_jsonl
    }

    fn load_segment(&mut self, idx: usize) -> Result<usize, String> {
        let m = self.dir[idx];
        if m.is_compacted() {
            return Err(format!(
                "segment {idx} is compacted: frame data removed by retention, only index summaries remain"
            ));
        }
        self.r
            .seek(SeekFrom::Start(m.offset))
            .map_err(|e| format!("seek error: {e}"))?;
        let need = m.frames as usize * FRAME_LEN;
        self.buf.resize(need, 0);
        self.r
            .read_exact(&mut self.buf)
            .map_err(|e| format!("segment {idx}: short read: {e}"))?;
        Ok(m.frames as usize)
    }

    /// Read one segment's raw frame bytes (compaction's copy path).
    /// Errors on compacted segments like any frame-level read.
    pub fn read_segment_raw(&mut self, idx: usize) -> Result<Vec<u8>, String> {
        let n = self.load_segment(idx)?;
        Ok(self.buf[..n * FRAME_LEN].to_vec())
    }

    fn decode_loaded(&self, idx: usize, j: usize) -> Result<(TraceEvent, u64, u64), String> {
        let b: &[u8; FRAME_LEN] = self.buf[j * FRAME_LEN..(j + 1) * FRAME_LEN]
            .try_into()
            .unwrap();
        decode_frame(b).map_err(|e| format!("segment {idx} frame {j}: {e}"))
    }

    /// Visit every frame the filter admits, in file order, decoding one
    /// segment at a time and skipping segments the index rules out.
    /// Hard-errors if an admitted segment has been compacted away —
    /// frame-level answers over compacted ranges would be silently
    /// wrong, so they fail loudly instead.
    pub fn scan<F: FnMut(&TraceEvent, u64, u64)>(
        &mut self,
        filter: &ScanFilter,
        f: F,
    ) -> Result<ScanStats, String> {
        let end = self.dir.len();
        self.scan_range(0..end, filter, f)
    }

    /// [`CaptureReader::scan`] restricted to segments `range` — the
    /// windowed-replay primitive: a caller that knows which segments a
    /// time window touches decodes only those.
    pub fn scan_range<F: FnMut(&TraceEvent, u64, u64)>(
        &mut self,
        range: std::ops::Range<usize>,
        filter: &ScanFilter,
        mut f: F,
    ) -> Result<ScanStats, String> {
        let mut stats = ScanStats::default();
        for idx in range {
            if !filter.admits_segment(&self.dir[idx]) {
                stats.segments_skipped += 1;
                continue;
            }
            stats.segments_scanned += 1;
            let frames = self.load_segment(idx)?;
            for j in 0..frames {
                let (ev, at, key) = self.decode_loaded(idx, j)?;
                stats.frames_decoded += 1;
                if filter.admits_frame(&ev, at) {
                    stats.frames_matched += 1;
                    f(&ev, at, key);
                }
            }
        }
        Ok(stats)
    }
}

// ----------------------------------------------------------- queries --

/// Event counts by variant name — answered from the index alone (no
/// frame is decoded). Identical to `Replay::counts` over the same
/// events: the writer counts from the very events it encodes.
pub fn capture_counts<R: Read + Seek>(r: &CaptureReader<R>) -> BTreeMap<String, u64> {
    let mut totals = [0u64; TAG_COUNT];
    for seg in r.segments() {
        for (i, &c) in seg.kind_counts.iter().enumerate() {
            totals[i] += c as u64;
        }
    }
    let mut out = BTreeMap::new();
    for (i, &n) in totals.iter().enumerate() {
        if n > 0 {
            out.insert(tag_name(i as u8 + 1).expect("tag in range").to_string(), n);
        }
    }
    out
}

/// Streaming twin of `Replay::path_of`: reconstruct the hop-by-hop path
/// of message `(origin, msg_id)` scanning only segments that contain
/// forward/deliver frames mentioning `origin`.
pub fn capture_path_of<R: Read + Seek>(
    r: &mut CaptureReader<R>,
    origin: u64,
    msg_id: u64,
) -> Result<Option<MessagePath>, String> {
    let Ok(origin_id) = u32::try_from(origin) else {
        return Ok(None); // node ids are u32; a larger origin matches nothing
    };
    let filter = ScanFilter::all()
        .with_kind_names(&["forward", "deliver"])
        .with_node(NodeId(origin_id));
    let mut path = MessagePath::default();
    r.scan(&filter, |ev, _, _| match *ev {
        TraceEvent::Forward {
            t,
            node,
            origin: o,
            msg_id: m,
            next,
            hops,
        } if (o.0 as u64, m) == (origin, msg_id) => {
            path.hops.push(PathHop {
                t,
                node: node.0 as u64,
                next: next.map(|n| n.0 as u64),
                hops: hops as u64,
            });
        }
        TraceEvent::Deliver {
            t,
            node,
            origin: o,
            msg_id: m,
            hops,
            latency_us,
        } if (o.0 as u64, m) == (origin, msg_id) && path.delivered.is_none() => {
            path.delivered = Some((t, node.0 as u64, hops as u64, latency_us));
        }
        _ => {}
    })?;
    Ok(if path.hops.is_empty() && path.delivered.is_none() {
        None
    } else {
        Some(path)
    })
}

/// Streaming twin of `Replay::drops_of_seq`: every drop of frame `seq`,
/// in file order, scanning only segments containing drop frames.
pub fn capture_drops_of_seq<R: Read + Seek>(
    r: &mut CaptureReader<R>,
    seq: u64,
) -> Result<Vec<DropRecord>, String> {
    let filter = ScanFilter::all().with_kind_names(&["drop"]);
    let mut out = Vec::new();
    r.scan(&filter, |ev, _, _| {
        if let TraceEvent::Drop {
            t,
            seq: s,
            node,
            cause,
        } = *ev
        {
            if s == seq {
                out.push((t, node.0 as u64, cause.as_str().to_string()));
            }
        }
    })?;
    Ok(out)
}

/// Streaming twin of `Replay::energy_of`: one node's cumulative energy
/// timeline, scanning only segments containing energy frames that
/// mention the node.
pub fn capture_energy_of<R: Read + Seek>(
    r: &mut CaptureReader<R>,
    node: u64,
) -> Result<Vec<(u64, f64)>, String> {
    let Ok(node_id) = u32::try_from(node) else {
        return Ok(Vec::new());
    };
    let filter = ScanFilter::all()
        .with_kind_names(&["energy"])
        .with_node(NodeId(node_id));
    let mut out = Vec::new();
    r.scan(&filter, |ev, _, _| {
        if let TraceEvent::Energy {
            t,
            node: n,
            consumed_j,
        } = *ev
        {
            if n.0 as u64 == node {
                out.push((t, consumed_j));
            }
        }
    })?;
    Ok(out)
}

// ------------------------------------------------------------- merge --

/// Pull-style frame cursor over a capture, for k-way merging of
/// per-shard captures. Yields frames in `(at, key)` order.
///
/// A shard's event loop is time-ordered, so its capture stream is
/// `at`-monotone by construction (a regression is a hard error — the
/// file is not a shard capture). Within one `at` microsecond, though,
/// the shard wheel executes events in insertion order, not key order,
/// so a shard stream can contain *key* inversions inside an equal-`at`
/// run. The in-memory merge ([`crate::merge_keyed_events_with`])
/// handles those with a sort-based fallback; the cursor does the
/// bounded-memory equivalent — it buffers one equal-`at` run at a time
/// and stably sorts it by key (capture order kept for equal keys),
/// which reproduces the same `(at, key, capture order)` total order
/// without ever sorting the full stream. Memory is one segment plus
/// the current run.
#[derive(Debug)]
pub struct CaptureCursor<R: Read + Seek> {
    reader: CaptureReader<R>,
    seg_idx: usize,
    frame_idx: usize,
    /// The current equal-`at` run, key-sorted; front is the next frame.
    run: std::collections::VecDeque<(TraceEvent, u64, u64)>,
    /// First frame of the *next* run, read while delimiting this one.
    pending: Option<(TraceEvent, u64, u64)>,
    last_at: Option<u64>,
}

impl CaptureCursor<BufReader<File>> {
    /// Open a capture file as a cursor.
    pub fn open(path: impl AsRef<Path>) -> Result<CaptureCursor<BufReader<File>>, String> {
        CaptureCursor::new(CaptureReader::open(path)?)
    }
}

impl<R: Read + Seek> CaptureCursor<R> {
    /// Position a cursor at the reader's first frame.
    pub fn new(reader: CaptureReader<R>) -> Result<CaptureCursor<R>, String> {
        let mut c = CaptureCursor {
            reader,
            seg_idx: 0,
            frame_idx: 0,
            run: std::collections::VecDeque::new(),
            pending: None,
            last_at: None,
        };
        c.refill()?;
        Ok(c)
    }

    /// The underlying reader's trailer drop count.
    pub fn frames_dropped(&self) -> u64 {
        self.reader.frames_dropped()
    }

    /// Next frame in raw capture order, enforcing `at` monotonicity.
    fn raw_next(&mut self) -> Result<Option<(TraceEvent, u64, u64)>, String> {
        loop {
            if self.seg_idx >= self.reader.segments().len() {
                return Ok(None);
            }
            let frames = self.reader.segments()[self.seg_idx].frames as usize;
            if self.frame_idx == 0 {
                self.reader.load_segment(self.seg_idx)?;
            }
            if self.frame_idx < frames {
                let decoded = self.reader.decode_loaded(self.seg_idx, self.frame_idx)?;
                self.frame_idx += 1;
                if self.last_at.is_some_and(|a| decoded.1 < a) {
                    return Err(format!(
                        "capture `at` not monotone at segment {} frame {}",
                        self.seg_idx,
                        self.frame_idx - 1
                    ));
                }
                self.last_at = Some(decoded.1);
                return Ok(Some(decoded));
            }
            self.seg_idx += 1;
            self.frame_idx = 0;
        }
    }

    /// Load the next equal-`at` run and key-sort it (no-op if one is
    /// already buffered). Maintains the invariant that `run` is
    /// non-empty unless the capture is exhausted.
    fn refill(&mut self) -> Result<(), String> {
        if !self.run.is_empty() {
            return Ok(());
        }
        let first = match self.pending.take() {
            Some(f) => f,
            None => match self.raw_next()? {
                Some(f) => f,
                None => return Ok(()),
            },
        };
        let at = first.1;
        let mut run = vec![first];
        loop {
            match self.raw_next()? {
                Some(f) if f.1 == at => run.push(f),
                Some(f) => {
                    self.pending = Some(f);
                    break;
                }
                None => break,
            }
        }
        // Stable: equal (at, key) frames keep capture order, matching
        // the in-memory merge's (at, key, capture index) sort key.
        run.sort_by_key(|f| f.2);
        self.run = run.into();
        Ok(())
    }

    /// The `(at, key)` of the next frame, if any (no I/O).
    pub fn peek_pos(&self) -> Option<(u64, u64)> {
        self.run.front().map(|&(_, at, key)| (at, key))
    }

    /// Consume and return the next frame; `Ok(None)` at end of capture.
    #[allow(clippy::type_complexity)]
    pub fn advance(&mut self) -> Result<Option<(TraceEvent, u64, u64)>, String> {
        let cur = self.run.pop_front();
        if cur.is_some() {
            self.refill()?;
        }
        Ok(cur)
    }
}

/// K-way merge of per-shard capture files into the `(at, key)` total
/// order — the disk-backed twin of
/// [`crate::ring::merge_keyed_events_with`], same order semantics
/// (equal `(at, key)` never spans shards, so first-minimal-cursor-wins
/// reproduces the reference emission order; each cursor key-sorts its
/// equal-`at` runs, the bounded-memory twin of the in-memory merge's
/// sort fallback). Memory is one segment plus one equal-`at` run per
/// shard. Returns the merged frame count.
pub fn merge_captures_with<R: Read + Seek, F: FnMut(&TraceEvent)>(
    cursors: &mut [CaptureCursor<R>],
    mut f: F,
) -> Result<u64, String> {
    let mut merged = 0u64;
    loop {
        let mut best: Option<(u64, u64, usize)> = None;
        for (i, c) in cursors.iter().enumerate() {
            if let Some((at, key)) = c.peek_pos() {
                if best.is_none_or(|(ba, bk, _)| (at, key) < (ba, bk)) {
                    best = Some((at, key, i));
                }
            }
        }
        let Some((_, _, i)) = best else {
            return Ok(merged);
        };
        let (ev, _, _) = cursors[i].advance()?.expect("peeked frame exists");
        f(&ev);
        merged += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::tests::exhaustive_events;
    use crate::replay::Replay;
    use crate::ring::merge_keyed_events;
    use std::io::Cursor;

    /// A deterministic mixed stream: several copies of the exhaustive
    /// event set with distinct, increasing `(at, key)` stamps.
    fn stream(copies: usize) -> Vec<(TraceEvent, u64, u64)> {
        let mut out = Vec::new();
        let mut at = 0u64;
        for c in 0..copies {
            for (i, ev) in exhaustive_events().into_iter().enumerate() {
                at += 1 + (i as u64 % 3);
                out.push((ev, at, ((c as u64) << 32) | i as u64));
            }
        }
        out
    }

    fn write_capture(frames: &[(TraceEvent, u64, u64)], segment_frames: usize) -> Vec<u8> {
        let mut w =
            CaptureWriter::new(Vec::new(), CaptureConfig { segment_frames }).expect("header");
        for (ev, at, key) in frames {
            w.push(ev, *at, *key).expect("push");
        }
        let (bytes, _) = w.finish().expect("finish");
        bytes
    }

    #[test]
    fn round_trips_through_segments_with_exact_index() {
        let frames = stream(4);
        let mut w =
            CaptureWriter::new(Vec::new(), CaptureConfig { segment_frames: 7 }).expect("header");
        for (ev, at, key) in &frames {
            w.push(ev, *at, *key).expect("push");
        }
        w.set_frames_dropped(5);
        let (bytes, stats) = w.finish().expect("finish");
        assert_eq!(stats.frames, frames.len() as u64);
        assert_eq!(stats.segments, frames.len().div_ceil(7) as u64);
        assert_eq!(stats.bytes, bytes.len() as u64);
        assert_eq!(stats.frames_dropped, 5);
        assert!(is_segmented_capture(&bytes));
        assert!(!crate::frame::is_binary_capture(&bytes));

        let mut r = CaptureReader::new(Cursor::new(bytes)).expect("open");
        assert_eq!(r.frames(), frames.len() as u64);
        assert_eq!(r.frames_dropped(), 5);
        assert_eq!(r.segments().len(), frames.len().div_ceil(7));
        // Index invariants: at ranges and kind counts are exact, node
        // filters have no false negatives.
        let mut cursor = 0usize;
        for seg in r.segments().to_vec() {
            let slice = &frames[cursor..cursor + seg.frames as usize];
            cursor += seg.frames as usize;
            assert_eq!(seg.at_min, slice.iter().map(|f| f.1).min().unwrap());
            assert_eq!(seg.at_max, slice.iter().map(|f| f.1).max().unwrap());
            let mut counts = [0u32; TAG_COUNT];
            for (ev, _, _) in slice {
                counts[event_tag(ev) as usize - 1] += 1;
                visit_event_nodes(ev, |n| assert!(seg.maybe_mentions(n), "false negative"));
            }
            assert_eq!(seg.kind_counts, counts);
        }
        assert_eq!(cursor, frames.len());
        // Full scan reproduces every frame, stamps included, in order.
        let mut got = Vec::new();
        let s = r
            .scan(&ScanFilter::all(), |ev, at, key| got.push((*ev, at, key)))
            .expect("scan");
        assert_eq!(got, frames);
        assert_eq!(s.segments_skipped, 0);
        assert_eq!(s.frames_matched, frames.len() as u64);
    }

    #[test]
    fn empty_capture_round_trips() {
        let bytes = write_capture(&[], 8);
        assert_eq!(bytes.len(), CAPTURE_HEADER_LEN + TRAILER_LEN);
        let mut r = CaptureReader::new(Cursor::new(bytes)).expect("open");
        assert_eq!(r.frames(), 0);
        let s = r
            .scan(&ScanFilter::all(), |_, _, _| panic!())
            .expect("scan");
        assert_eq!(s, ScanStats::default());
        assert!(capture_counts(&r).is_empty());
    }

    #[test]
    fn filters_are_exact_and_skip_segments() {
        // Kind-clustered stream: 20 Rx frames, then 20 Energy frames —
        // with 8-frame segments the kind filter must skip whole
        // segments on both sides.
        let mut frames = Vec::new();
        for i in 0..20u64 {
            frames.push((
                TraceEvent::Rx {
                    t: i,
                    seq: i,
                    node: NodeId(1),
                },
                i,
                i,
            ));
        }
        for i in 20..40u64 {
            frames.push((
                TraceEvent::Energy {
                    t: i,
                    node: NodeId(2),
                    consumed_j: i as f64,
                },
                i,
                i,
            ));
        }
        let bytes = write_capture(&frames, 8);
        let mut r = CaptureReader::new(Cursor::new(bytes)).expect("open");

        let mut got = 0u64;
        let s = r
            .scan(
                &ScanFilter::all().with_kind_names(&["energy"]),
                |ev, _, _| {
                    assert!(matches!(ev, TraceEvent::Energy { .. }));
                    got += 1;
                },
            )
            .expect("scan");
        assert_eq!(got, 20);
        assert!(s.segments_skipped >= 2, "{s:?}");
        assert!(s.frames_decoded < frames.len() as u64);

        // Node filter: an id never mentioned skips everything.
        let s = r
            .scan(&ScanFilter::all().with_node(NodeId(777)), |_, _, _| {
                panic!("node 777 never occurs")
            })
            .expect("scan");
        assert_eq!(s.segments_scanned, 0);
        assert_eq!(s.segments_skipped, 5);

        // Time-range filter: only the covering segments are read.
        let mut got = Vec::new();
        let s = r
            .scan(&ScanFilter::all().with_at_range(10, 12), |_, at, _| {
                got.push(at)
            })
            .expect("scan");
        assert_eq!(got, vec![10, 11, 12]);
        assert!(s.segments_skipped >= 3, "{s:?}");
    }

    #[test]
    fn corruption_and_truncation_are_hard_errors() {
        let frames = stream(2);
        let bytes = write_capture(&frames, 8);
        // Truncation (lost trailer byte).
        let e = CaptureReader::new(Cursor::new(bytes[..bytes.len() - 1].to_vec())).unwrap_err();
        assert!(e.contains("trailer") || e.contains("inconsistent"), "{e}");
        // An unfinalized capture (data only, no footer).
        let cut = CAPTURE_HEADER_LEN + 8 * FRAME_LEN;
        let e = CaptureReader::new(Cursor::new(bytes[..cut].to_vec())).unwrap_err();
        assert!(e.contains("trailer") || e.contains("short"), "{e}");
        // Bad header magic.
        let mut bad = bytes.clone();
        bad[0] = b'{';
        assert!(CaptureReader::new(Cursor::new(bad)).is_err());
        // Corrupt directory offset.
        let mut bad = bytes.clone();
        let dir_offset = u64::from_le_bytes(
            bytes[bytes.len() - TRAILER_LEN..bytes.len() - TRAILER_LEN + 8]
                .try_into()
                .unwrap(),
        ) as usize;
        bad[dir_offset] ^= 0xFF;
        let e = CaptureReader::new(Cursor::new(bad)).unwrap_err();
        assert!(e.contains("corrupt directory"), "{e}");
    }

    #[test]
    fn queries_match_replay_exactly() {
        // A stream with real message structure on top of the
        // exhaustive set: two messages, one delivered, plus drops and
        // energy timelines.
        let mut frames = stream(2);
        let extra = [
            TraceEvent::Forward {
                t: 500,
                node: NodeId(5),
                origin: NodeId(5),
                msg_id: 9,
                next: Some(NodeId(3)),
                hops: 1,
            },
            TraceEvent::Forward {
                t: 510,
                node: NodeId(3),
                origin: NodeId(5),
                msg_id: 9,
                next: None,
                hops: 2,
            },
            TraceEvent::Deliver {
                t: 520,
                node: NodeId(9),
                origin: NodeId(5),
                msg_id: 9,
                hops: 2,
                latency_us: 20,
            },
            TraceEvent::Drop {
                t: 530,
                seq: 42,
                node: NodeId(7),
                cause: crate::event::DropCause::Collision,
            },
            TraceEvent::Drop {
                t: 531,
                seq: 42,
                node: NodeId(8),
                cause: crate::event::DropCause::Loss,
            },
            TraceEvent::Energy {
                t: 540,
                node: NodeId(7),
                consumed_j: 0.25,
            },
        ];
        for (i, ev) in extra.into_iter().enumerate() {
            frames.push((ev, 1000 + i as u64, i as u64));
        }
        let events: Vec<TraceEvent> = frames.iter().map(|f| f.0).collect();
        let replay = Replay::from_events(&events);
        let mut r = CaptureReader::new(Cursor::new(write_capture(&frames, 5))).expect("open");

        assert_eq!(capture_counts(&r), replay.counts());
        assert_eq!(r.frames() as usize, replay.len());
        for (origin, msg_id) in [(5u64, 9u64), (5, 99), (1, 11), (123456, 1), (u64::MAX, 0)] {
            assert_eq!(
                capture_path_of(&mut r, origin, msg_id).expect("scan"),
                replay.path_of(origin, msg_id),
                "path {origin}/{msg_id}"
            );
        }
        for seq in [42u64, 9, u64::MAX, 7] {
            assert_eq!(
                capture_drops_of_seq(&mut r, seq).expect("scan"),
                replay.drops_of_seq(seq),
                "drops {seq}"
            );
        }
        for node in [7u64, 4, 2, 999, u64::MAX] {
            assert_eq!(
                capture_energy_of(&mut r, node).expect("scan"),
                replay.energy_of(node),
                "energy {node}"
            );
        }
    }

    #[test]
    fn cursor_merge_matches_in_memory_merge() {
        // Split a causally-stamped stream across two "shards" by node
        // parity — each shard's stream stays (at, key)-sorted — and
        // check the disk merge equals the in-memory reference merge.
        let frames = stream(3);
        let (a, b): (Vec<_>, Vec<_>) = frames.iter().copied().partition(|(_, _, key)| key & 1 == 0);
        let shards: Vec<Vec<(u64, u64, TraceEvent)>> = [&a, &b]
            .iter()
            .map(|s| s.iter().map(|&(ev, at, key)| (at, key, ev)).collect())
            .collect();
        let want = merge_keyed_events(shards);

        let mut cursors: Vec<CaptureCursor<Cursor<Vec<u8>>>> = [&a, &b]
            .iter()
            .map(|s| {
                CaptureCursor::new(
                    CaptureReader::new(Cursor::new(write_capture(s, 4))).expect("open"),
                )
                .expect("cursor")
            })
            .collect();
        let mut got = Vec::new();
        let n = merge_captures_with(&mut cursors, |ev| got.push(*ev)).expect("merge");
        assert_eq!(n as usize, want.len());
        assert_eq!(got, want);
    }

    #[test]
    fn cursor_rejects_unsorted_captures() {
        let frames = vec![
            (
                TraceEvent::Rx {
                    t: 9,
                    seq: 0,
                    node: NodeId(1),
                },
                9,
                0,
            ),
            (
                TraceEvent::Rx {
                    t: 3,
                    seq: 1,
                    node: NodeId(1),
                },
                3,
                0,
            ),
        ];
        let r = CaptureReader::new(Cursor::new(write_capture(&frames, 8))).expect("open");
        let err = CaptureCursor::new(r).unwrap_err();
        assert!(err.contains("`at` not monotone"), "{err}");
    }

    #[test]
    fn cursor_key_sorts_equal_at_runs() {
        // A shard wheel executes same-microsecond events in insertion
        // order, so a shard capture can carry key inversions *within*
        // an equal-`at` run. The cursor must heal those (yielding the
        // same (at, key, capture order) total order the in-memory
        // merge's sort fallback produces), while `at` regressions stay
        // hard errors (previous test).
        let rx = |t: u64, seq: u64| TraceEvent::Rx {
            t,
            seq,
            node: NodeId(1),
        };
        // at=5 run arrives with keys 9, 2, 9 — unsorted, with a dup.
        let frames = vec![
            (rx(1, 0), 1, 7),
            (rx(5, 1), 5, 9),
            (rx(5, 2), 5, 2),
            (rx(5, 3), 5, 9),
            (rx(8, 4), 8, 1),
        ];
        let in_memory = merge_keyed_events(vec![frames
            .iter()
            .map(|&(ev, at, key)| (at, key, ev))
            .collect()]);
        let r = CaptureReader::new(Cursor::new(write_capture(&frames, 2))).expect("open");
        let mut c = CaptureCursor::new(r).expect("cursor");
        let mut got = Vec::new();
        let mut last = None;
        while let Some((ev, at, key)) = c.advance().expect("advance") {
            assert!(last.is_none_or(|p| p <= (at, key)), "cursor output sorted");
            last = Some((at, key));
            got.push(ev);
        }
        assert_eq!(got, in_memory);
        assert_eq!(
            got.iter().map(|ev| ev.t()).collect::<Vec<_>>(),
            vec![1, 5, 5, 5, 8]
        );
    }

    #[test]
    fn capture_sink_writes_a_valid_file() {
        let dir = std::env::temp_dir().join(format!("wmsn-capture-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("test.wcap");
        let frames = stream(2);
        let mut sink =
            CaptureSink::create(&path, CaptureConfig { segment_frames: 16 }).expect("create");
        for (ev, at, key) in &frames {
            sink.record_keyed(ev, *at, *key);
        }
        assert_eq!(sink.frames_written(), frames.len() as u64);
        sink.set_frames_dropped(3);
        let stats = sink.finalize().expect("finalize");
        assert_eq!(sink.finalize().expect("idempotent").frames, stats.frames);
        drop(sink);
        let mut r = CaptureReader::open(&path).expect("open");
        assert_eq!(r.frames(), frames.len() as u64);
        assert_eq!(r.frames_dropped(), 3);
        assert_eq!(r.bytes(), stats.bytes);
        let mut got = Vec::new();
        r.scan(&ScanFilter::all(), |ev, at, key| got.push((*ev, at, key)))
            .expect("scan");
        assert_eq!(got, frames);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn extension_block_round_trips_checkpoints_and_alerts() {
        let frames = stream(3);
        let mut w =
            CaptureWriter::new(Vec::new(), CaptureConfig { segment_frames: 8 }).expect("header");
        let mut boundaries = Vec::new();
        for (ev, at, key) in &frames {
            if w.push(ev, *at, *key).expect("push") {
                let sealed = w.segments_sealed();
                w.add_checkpoint(sealed, vec![sealed as u8; 5 + sealed as usize]);
                boundaries.push(sealed);
            }
        }
        w.set_alerts_jsonl("{\"alert\":\"x\"}\n".into());
        let (bytes, stats) = w.finish().expect("finish");
        assert_eq!(stats.bytes, bytes.len() as u64);
        assert!(!boundaries.is_empty());

        let mut r = CaptureReader::new(Cursor::new(bytes)).expect("open");
        assert_eq!(r.version(), CAPTURE_VERSION);
        assert_eq!(r.alerts_jsonl(), "{\"alert\":\"x\"}\n");
        assert_eq!(r.checkpoints().len(), boundaries.len());
        for ((seg, blob), want) in r.checkpoints().iter().zip(&boundaries) {
            assert_eq!(seg, want);
            assert_eq!(blob, &vec![*want as u8; 5 + *want as usize]);
        }
        // The extension block is invisible to frame-level reads.
        let mut got = Vec::new();
        r.scan(&ScanFilter::all(), |ev, at, key| got.push((*ev, at, key)))
            .expect("scan");
        assert_eq!(got, frames);
    }

    #[test]
    fn version_1_files_still_open() {
        // A version-1 file is exactly a version-2 file with no
        // extension block and a 1 in the header version slot.
        let frames = stream(2);
        let mut bytes = write_capture(&frames, 8);
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let mut r = CaptureReader::new(Cursor::new(bytes)).expect("open v1");
        assert_eq!(r.version(), 1);
        assert!(r.checkpoints().is_empty());
        assert_eq!(r.alerts_jsonl(), "");
        let mut got = Vec::new();
        r.scan(&ScanFilter::all(), |ev, at, key| got.push((*ev, at, key)))
            .expect("scan");
        assert_eq!(got, frames);
        // Unknown future versions stay hard errors.
        let mut bad = write_capture(&frames, 8);
        bad[8..12].copy_from_slice(&(CAPTURE_VERSION + 1).to_le_bytes());
        assert!(CaptureReader::new(Cursor::new(bad))
            .unwrap_err()
            .contains("unsupported capture version"));
    }

    #[test]
    fn compacted_segments_keep_the_index_and_fail_frame_reads_loudly() {
        let frames = stream(3);
        let src_bytes = write_capture(&frames, 8);
        let mut src = CaptureReader::new(Cursor::new(src_bytes)).expect("open src");
        let n_segs = src.segments().len();
        assert!(n_segs >= 4, "want >= 4 segments, got {n_segs}");

        // Rewrite with the first half compacted, the rest retained.
        let keep_from = n_segs / 2;
        let mut w =
            CaptureWriter::new(Vec::new(), CaptureConfig { segment_frames: 8 }).expect("header");
        w.add_checkpoint(keep_from as u64, vec![7; 3]);
        for idx in 0..n_segs {
            let meta = src.segments()[idx];
            if idx < keep_from {
                w.push_compacted(&meta);
            } else {
                let raw = src.read_segment_raw(idx).expect("raw");
                w.push_segment_raw(&meta, &raw).expect("copy");
            }
        }
        let (bytes, stats) = w.finish().expect("finish");
        assert_eq!(stats.frames, frames.len() as u64);

        let mut r = CaptureReader::new(Cursor::new(bytes)).expect("open compacted");
        assert_eq!(r.frames(), frames.len() as u64);
        assert_eq!(r.segments().len(), n_segs);
        // Index entries (hence index-only queries) survive unchanged.
        assert_eq!(capture_counts(&r), capture_counts(&src));
        for (idx, (a, b)) in r.segments().iter().zip(src.segments()).enumerate() {
            assert_eq!(a.is_compacted(), idx < keep_from);
            assert_eq!(
                (a.frames, a.at_min, a.at_max),
                (b.frames, b.at_min, b.at_max)
            );
            assert_eq!(a.kind_counts, b.kind_counts);
            assert_eq!(a.node_filter, b.node_filter);
        }
        // A scan over the retained tail works and matches the source.
        let first_kept_at = r.segments()[keep_from].at_min;
        let want: Vec<_> = frames
            .iter()
            .copied()
            .filter(|f| f.1 >= first_kept_at)
            .collect();
        let mut got = Vec::new();
        r.scan_range(keep_from..n_segs, &ScanFilter::all(), |ev, at, key| {
            got.push((*ev, at, key))
        })
        .expect("tail scan");
        assert_eq!(got, want);
        // A frame-level read touching a compacted segment fails loudly.
        let e = r.scan(&ScanFilter::all(), |_, _, _| {}).unwrap_err();
        assert!(e.contains("compacted"), "{e}");
        let e = r.read_segment_raw(0).unwrap_err();
        assert!(e.contains("compacted"), "{e}");
        // But a filtered scan whose index pruning avoids the compacted
        // range still answers.
        let mut n = 0u64;
        r.scan(
            &ScanFilter::all().with_at_range(first_kept_at, u64::MAX),
            |_, _, _| n += 1,
        )
        .expect("pruned scan");
        assert_eq!(n, want.len() as u64);
    }

    #[test]
    fn extension_corruption_is_a_hard_open_error() {
        let frames = stream(2);
        let mut w =
            CaptureWriter::new(Vec::new(), CaptureConfig { segment_frames: 8 }).expect("header");
        for (ev, at, key) in &frames {
            w.push(ev, *at, *key).expect("push");
        }
        w.add_checkpoint(1, vec![1, 2, 3]);
        w.set_alerts_jsonl("{}\n".into());
        let (bytes, _) = w.finish().expect("finish");
        let ext_offset = u64::from_le_bytes(
            bytes[bytes.len() - TRAILER_LEN + 32..bytes.len() - TRAILER_LEN + 40]
                .try_into()
                .unwrap(),
        ) as usize;
        assert!(ext_offset > 0);
        // Bad extension magic.
        let mut bad = bytes.clone();
        bad[ext_offset] ^= 0xFF;
        let e = CaptureReader::new(Cursor::new(bad)).unwrap_err();
        assert!(e.contains("bad magic"), "{e}");
        // Blob length overrunning the block.
        let mut bad = bytes.clone();
        bad[ext_offset + 24..ext_offset + 28].copy_from_slice(&u32::MAX.to_le_bytes());
        let e = CaptureReader::new(Cursor::new(bad)).unwrap_err();
        assert!(e.contains("corrupt extension"), "{e}");
        // ext_offset pointing past the directory.
        let mut bad = bytes.clone();
        let tr = bad.len() - TRAILER_LEN;
        let file_len = bad.len() as u64;
        bad[tr + 32..tr + 40].copy_from_slice(&file_len.to_le_bytes());
        let e = CaptureReader::new(Cursor::new(bad)).unwrap_err();
        assert!(e.contains("extension block"), "{e}");
    }
}
