//! Fixed-bucket, allocation-free histogram.
//!
//! Layout: values below [`LINEAR_MAX`] get one exact bucket each (hop
//! counts, small latencies); larger values share one bucket per power
//! of two (log₂ tail), saturating in the top bucket. Everything is a
//! fixed array — recording never allocates, so histograms can live on
//! the simulator's metrics hot path.

/// Values `< LINEAR_MAX` are counted exactly, one bucket per value.
pub const LINEAR_MAX: u64 = 64;

/// Total bucket count: 64 linear + one per power of two from 2⁶ up to
/// the saturating 2⁶³ bucket.
pub const BUCKETS: usize = 122;

/// A fixed-bucket histogram over `u64` samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a value: exact below [`LINEAR_MAX`], log₂ above.
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        // v >= 64 ⇒ ilog2(v) in 6..=63 ⇒ index in 64..=121.
        58 + v.ilog2() as usize
    }
}

/// Largest value a bucket can hold (the value `percentile` reports).
fn upper_bound(b: usize) -> u64 {
    if b < LINEAR_MAX as usize {
        b as u64
    } else {
        let exp = (b - 57) as u32;
        if exp >= 64 {
            u64::MAX
        } else {
            (1u64 << exp) - 1
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-quantile (`p` in `0.0..=1.0`), reported as the upper
    /// bound of the containing bucket — exact for values below
    /// [`LINEAR_MAX`], quantised to the next power-of-two boundary
    /// above it. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return upper_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs — the compact
    /// report form.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(b, &n)| (upper_bound(b), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_are_exact() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(63), 63);
        assert_eq!(upper_bound(63), 63);
    }

    #[test]
    fn log_bucket_boundaries() {
        // 64..=127 share the first log bucket; 128 starts the next.
        assert_eq!(bucket_of(64), 64);
        assert_eq!(bucket_of(127), 64);
        assert_eq!(bucket_of(128), 65);
        assert_eq!(upper_bound(64), 127);
        assert_eq!(upper_bound(65), 255);
        // Powers of two land in the bucket they open.
        assert_eq!(bucket_of(1 << 20), 58 + 20);
        assert_eq!(upper_bound(58 + 20), (1 << 21) - 1);
    }

    #[test]
    fn percentiles_are_exact_in_the_linear_range() {
        let mut h = Histogram::new();
        for v in 1..=60 {
            h.record(v);
        }
        assert_eq!(h.count(), 60);
        assert_eq!(h.percentile(0.5), 30);
        assert_eq!(h.percentile(0.95), 57);
        assert_eq!(h.percentile(0.99), 60);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(1.0), 60);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 60);
        assert!((h.mean() - 30.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_quantise_to_bucket_upper_bounds_in_the_log_tail() {
        let mut h = Histogram::new();
        h.record(1000); // bucket [512, 1023]
        assert_eq!(h.percentile(0.5), 1000); // capped at observed max
        h.record(2000); // bucket [1024, 2047]
        assert_eq!(h.percentile(0.25), 1023); // bucket upper bound
    }

    #[test]
    fn top_bucket_saturates() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 63), BUCKETS - 1);
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(7);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 100);
        assert_eq!(a.nonzero_buckets().len(), 3);
    }
}
