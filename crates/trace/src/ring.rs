//! The ring pipeline: off-thread trace draining behind a bounded SPSC
//! ring.
//!
//! Inline mode (PR 4/6) installs a sink directly as the world's trace
//! sink, so every `observe()` — JSON rendering, detector updates — runs
//! on the simulation thread. [`RingSink`] moves that work off the hot
//! path: the sim thread only copies the [`TraceEvent`] (a `Copy` struct)
//! plus its causal `(at, key)` into a local chunk, and hands full chunks
//! to a drain thread through a bounded [`SpscRing`]. The drain thread
//! replays each frame into the *downstream* sinks (a `JsonlSink`, a
//! [`crate::frame::BinarySink`], the `HealthMonitor` detector bank, …)
//! exactly as the world would have — same events, same `(at, key)`s,
//! same order — which is why the drained output is byte-identical to
//! inline mode.
//!
//! # Backpressure is a policy, not an accident
//!
//! The ring is bounded ([`RingConfig::capacity_chunks`] ×
//! [`RingConfig::chunk_frames`] frames). When the sim thread outruns
//! the drain, [`BackpressurePolicy`] decides what happens:
//!
//! * [`Block`](BackpressurePolicy::Block) — the producer waits for
//!   space. Lossless; the wait is accounted in
//!   [`RingStats::blocked_us`]. This is the default and the only
//!   policy under which parity with inline mode holds.
//! * [`DropNewest`](BackpressurePolicy::DropNewest) — full ring means
//!   the offered chunk is discarded and counted
//!   ([`RingStats::frames_dropped`]). For fire-and-forget monitoring
//!   where losing trace lines beats stalling the simulation.
//!
//! # The flush barrier and determinism
//!
//! [`RingSink::flush`] is a **barrier, not a downstream flush**: it
//! pushes the partial chunk and waits until the drain thread has
//! delivered every frame produced so far, then returns *without*
//! calling `flush` on the downstream sinks. That restraint matters:
//! `HealthMonitor::flush` runs end-of-trace finalisation, and inline
//! mode never flushes mid-run — propagating would make the ring
//! pipeline observably different. Drivers place the barrier at
//! `run_until` boundaries (see `World::flush_trace`), after which
//! reading monitor state through [`RingSink::with_sink_mut`] sees
//! exactly what the inline monitor would have seen at the same sim
//! time. Since frames arrive in emission order over a FIFO ring and the
//! drain applies them in order, the barrier makes the whole pipeline a
//! deterministic function of the (deterministic) emission sequence.

use crate::event::TraceEvent;
use crate::sink::TraceSink;
use std::any::Any;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use wmsn_util::spsc::SpscRing;

/// One captured event with its causal merge position — the unit the
/// sim thread copies; 64-byte-ish, `Copy`, no heap.
#[derive(Clone, Copy, Debug)]
pub struct FrameRec {
    /// Sim time of the emitting event.
    pub at: u64,
    /// Causal event key (`node << 32 | counter`).
    pub key: u64,
    /// The event itself.
    pub ev: TraceEvent,
}

type Chunk = Vec<FrameRec>;

/// What to do when the ring is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Wait for the drain to free space (lossless; default).
    Block,
    /// Discard the offered chunk and count the frames lost.
    DropNewest,
}

/// Ring-pipeline tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct RingConfig {
    /// Frames per chunk — the producer batches this many events per
    /// ring push, so locks are ~1/`chunk_frames` of the event rate.
    pub chunk_frames: usize,
    /// Ring capacity in chunks.
    pub capacity_chunks: usize,
    /// Full-ring behaviour.
    pub policy: BackpressurePolicy,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            chunk_frames: 512,
            capacity_chunks: 1024,
            policy: BackpressurePolicy::Block,
        }
    }
}

/// Lifetime telemetry for one ring pipeline — the numbers the hotpath
/// bench writes next to `events_per_sec`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RingStats {
    /// Frames successfully handed to the drain.
    pub frames_written: u64,
    /// Frames discarded under [`BackpressurePolicy::DropNewest`].
    pub frames_dropped: u64,
    /// Wall time the producer spent blocked on a full ring, µs.
    pub blocked_us: u64,
    /// Peak ring occupancy, chunks.
    pub peak_chunks: usize,
    /// Configured capacity, chunks.
    pub capacity_chunks: usize,
    /// Configured chunk size, frames.
    pub chunk_frames: usize,
}

/// Frames-produced / frames-consumed ledger behind the flush barrier.
#[derive(Default)]
struct Progress {
    produced: u64,
    consumed: u64,
}

/// The off-thread trace pipeline, installed in the world like any other
/// sink. Construction spawns the drain thread; [`RingSink::finish`]
/// (or drop) closes the ring and joins it.
pub struct RingSink {
    cfg: RingConfig,
    ring: Arc<SpscRing<Chunk>>,
    sinks: Arc<Mutex<Vec<Box<dyn TraceSink + Send>>>>,
    progress: Arc<(Mutex<Progress>, Condvar)>,
    drain: Option<JoinHandle<()>>,
    pending: Chunk,
    frames_written: u64,
    frames_dropped: u64,
}

impl std::fmt::Debug for RingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingSink")
            .field("cfg", &self.cfg)
            .field("frames_written", &self.frames_written)
            .field("frames_dropped", &self.frames_dropped)
            .finish_non_exhaustive()
    }
}

impl RingSink {
    /// Spawn a ring pipeline draining into `sinks`. Each frame is
    /// replayed into every sink, in order, via
    /// [`TraceSink::record_keyed`].
    pub fn new(cfg: RingConfig, sinks: Vec<Box<dyn TraceSink + Send>>) -> Self {
        let cfg = RingConfig {
            chunk_frames: cfg.chunk_frames.max(1),
            capacity_chunks: cfg.capacity_chunks.max(1),
            ..cfg
        };
        let ring = Arc::new(SpscRing::<Chunk>::new(cfg.capacity_chunks));
        let sinks = Arc::new(Mutex::new(sinks));
        let progress = Arc::new((Mutex::new(Progress::default()), Condvar::new()));
        let drain = {
            let ring = Arc::clone(&ring);
            let sinks = Arc::clone(&sinks);
            let progress = Arc::clone(&progress);
            std::thread::Builder::new()
                .name("wmsn-trace-drain".into())
                .spawn(move || {
                    while let Some(chunk) = ring.pop_blocking() {
                        let n = chunk.len() as u64;
                        {
                            let mut bank = sinks.lock().expect("sink bank lock");
                            for rec in &chunk {
                                for sink in bank.iter_mut() {
                                    sink.record_keyed(&rec.ev, rec.at, rec.key);
                                }
                            }
                        }
                        let (lock, cv) = &*progress;
                        lock.lock().expect("progress lock").consumed += n;
                        cv.notify_all();
                    }
                })
                .expect("spawn trace drain thread")
        };
        RingSink {
            pending: Vec::with_capacity(cfg.chunk_frames),
            cfg,
            ring,
            sinks,
            progress,
            drain: Some(drain),
            frames_written: 0,
            frames_dropped: 0,
        }
    }

    /// Ring pipeline with default tuning.
    pub fn with_sinks(sinks: Vec<Box<dyn TraceSink + Send>>) -> Self {
        Self::new(RingConfig::default(), sinks)
    }

    /// Boxed constructor, handy for `World::set_trace_sink`.
    pub fn boxed(cfg: RingConfig, sinks: Vec<Box<dyn TraceSink + Send>>) -> Box<Self> {
        Box::new(Self::new(cfg, sinks))
    }

    /// Hand the pending chunk to the ring per the backpressure policy.
    fn push_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let chunk = std::mem::replace(&mut self.pending, Vec::with_capacity(self.cfg.chunk_frames));
        let n = chunk.len() as u64;
        // Announce production *before* the push so the barrier never
        // observes consumed > produced.
        self.progress.0.lock().expect("progress lock").produced += n;
        let accepted = match self.cfg.policy {
            BackpressurePolicy::Block => self.ring.push_blocking(chunk).is_ok(),
            BackpressurePolicy::DropNewest => self.ring.try_push(chunk).is_ok(),
        };
        if accepted {
            self.frames_written += n;
        } else {
            self.frames_dropped += n;
            // The drain will never see these frames; retire them from
            // the ledger so the barrier doesn't wait forever.
            let (lock, cv) = &*self.progress;
            lock.lock().expect("progress lock").consumed += n;
            cv.notify_all();
        }
    }

    /// Block until the drain has delivered every frame produced so far.
    /// This is the flush barrier; it does **not** flush downstream
    /// sinks (see the module docs for why).
    pub fn barrier(&mut self) {
        self.push_pending();
        let (lock, cv) = &*self.progress;
        let mut g = lock.lock().expect("progress lock");
        while g.consumed < g.produced {
            g = cv.wait(g).expect("progress lock");
        }
    }

    /// Run `f` against the first downstream sink downcastable to `T`,
    /// under the bank lock. Call [`RingSink::barrier`] first when the
    /// read must reflect everything emitted so far.
    pub fn with_sink_mut<T: 'static, R>(&self, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let mut bank = self.sinks.lock().expect("sink bank lock");
        bank.iter_mut()
            .find_map(|s| s.as_any_mut().downcast_mut::<T>())
            .map(f)
    }

    /// Telemetry snapshot (valid mid-run; final after
    /// [`RingSink::finish`]'s barrier).
    pub fn stats(&self) -> RingStats {
        let c = self.ring.stats();
        RingStats {
            frames_written: self.frames_written,
            frames_dropped: self.frames_dropped,
            blocked_us: c.blocked_us,
            peak_chunks: c.peak,
            capacity_chunks: self.cfg.capacity_chunks,
            chunk_frames: self.cfg.chunk_frames,
        }
    }

    /// Drain everything, stop the drain thread and hand back the
    /// downstream sinks plus final telemetry. Downstream sinks are
    /// *not* flushed — the caller decides (exactly as with inline
    /// sinks taken back out of a world).
    pub fn finish(mut self) -> (Vec<Box<dyn TraceSink + Send>>, RingStats) {
        self.barrier();
        self.ring.close();
        if let Some(h) = self.drain.take() {
            let _ = h.join();
        }
        let stats = self.stats();
        let bank = std::mem::take(&mut *self.sinks.lock().expect("sink bank lock"));
        (bank, stats)
    }
}

impl Drop for RingSink {
    fn drop(&mut self) {
        self.ring.close();
        if let Some(h) = self.drain.take() {
            let _ = h.join();
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.record_keyed(ev, ev.t(), 0);
    }
    fn record_keyed(&mut self, ev: &TraceEvent, at: u64, key: u64) {
        self.pending.push(FrameRec { at, key, ev: *ev });
        if self.pending.len() >= self.cfg.chunk_frames {
            self.push_pending();
        }
    }
    /// The flush barrier (see [`RingSink::barrier`]).
    fn flush(&mut self) {
        self.barrier();
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// In-memory frame sink: retains `(at, key, event)` triples. The
/// ring-pipeline analogue of [`crate::KeyedBufferSink`] — one per shard
/// ring; [`merge_keyed_events`] interleaves the shards back into
/// reference emission order without ever rendering JSON on a sim
/// thread.
#[derive(Default, Debug)]
pub struct FrameBufferSink {
    /// Captured frames in arrival order.
    pub entries: Vec<(u64, u64, TraceEvent)>,
}

impl FrameBufferSink {
    /// An empty frame buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for FrameBufferSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.entries.push((ev.t(), 0, *ev));
    }
    fn record_keyed(&mut self, ev: &TraceEvent, at: u64, key: u64) {
        self.entries.push((at, key, *ev));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Merge per-shard frame captures into one event sequence ordered by
/// `(at, key, capture order)` — the same total order
/// [`crate::merge_keyed_traces`] uses for JSONL lines, so the merged
/// events match the unsharded run's emission order exactly.
///
/// Each shard's event loop executes in `(at, key)` order, so its
/// capture stream arrives already sorted (equal pairs are consecutive
/// frames of one executed event and keep capture order), and a key's
/// node lives in exactly one shard, so equal `(at, key)` never spans
/// shards. A linear k-way merge therefore reproduces the total order
/// without a comparison sort over the full stream — which matters at
/// the 10⁷-frame scale of the n=100k monitored round. Unsorted inputs
/// (hand-built captures) are detected by a sortedness pre-scan and fall
/// back to the stable sort.
pub fn merge_keyed_events(shards: Vec<Vec<(u64, u64, TraceEvent)>>) -> Vec<TraceEvent> {
    let mut out = Vec::with_capacity(shards.iter().map(Vec::len).sum());
    merge_keyed_events_with(shards, |ev| out.push(*ev));
    out
}

/// Streaming form of [`merge_keyed_events`]: visit each event in the
/// merged `(at, key, capture order)` total order without materialising
/// the merged sequence. At the n=100k scale the merged `Vec` is a
/// gigabyte of fresh pages, so a consumer that only needs one ordered
/// pass (the health monitor, a serialising sink) should take this
/// entry point.
pub fn merge_keyed_events_with<F: FnMut(&TraceEvent)>(
    shards: Vec<Vec<(u64, u64, TraceEvent)>>,
    mut f: F,
) {
    let sorted = shards
        .iter()
        .all(|s| s.windows(2).all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)));
    if !sorted {
        for ev in merge_keyed_events_sorting(shards) {
            f(&ev);
        }
        return;
    }
    let total: usize = shards.iter().map(Vec::len).sum();
    let mut heads = vec![0usize; shards.len()];
    for _ in 0..total {
        let mut best: Option<(u64, u64, usize)> = None;
        for (s, shard) in shards.iter().enumerate() {
            if let Some(&(at, key, _)) = shard.get(heads[s]) {
                if best.is_none_or(|(ba, bk, _)| (at, key) < (ba, bk)) {
                    best = Some((at, key, s));
                }
            }
        }
        let (_, _, s) = best.expect("fewer than `total` frames emitted");
        f(&shards[s][heads[s]].2);
        heads[s] += 1;
    }
}

/// Sort-based fallback for [`merge_keyed_events`] when a shard stream
/// is not `(at, key)`-sorted.
fn merge_keyed_events_sorting(shards: Vec<Vec<(u64, u64, TraceEvent)>>) -> Vec<TraceEvent> {
    let mut all: Vec<(u64, u64, usize, TraceEvent)> = shards
        .into_iter()
        .flat_map(|entries| {
            entries
                .into_iter()
                .enumerate()
                .map(|(i, (at, key, ev))| (at, key, i, ev))
        })
        .collect();
    all.sort_by_key(|e| (e.0, e.1, e.2));
    all.into_iter().map(|(_, _, _, ev)| ev).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{BufferSink, CountingSink};
    use wmsn_util::NodeId;

    fn ev(t: u64, node: u32) -> TraceEvent {
        TraceEvent::Rx {
            t,
            seq: t,
            node: NodeId(node),
        }
    }

    #[test]
    fn drained_jsonl_is_byte_identical_to_inline() {
        let mut inline = BufferSink::new();
        let mut ring = RingSink::new(
            RingConfig {
                chunk_frames: 3, // force many partial/full chunk boundaries
                capacity_chunks: 2,
                policy: BackpressurePolicy::Block,
            },
            vec![Box::new(BufferSink::new())],
        );
        for i in 0..100u64 {
            let e = ev(i, (i % 7) as u32);
            inline.record_keyed(&e, i, i << 3);
            ring.record_keyed(&e, i, i << 3);
        }
        let (mut bank, stats) = ring.finish();
        assert_eq!(stats.frames_written, 100);
        assert_eq!(stats.frames_dropped, 0);
        let drained = bank
            .remove(0)
            .as_any()
            .downcast_ref::<BufferSink>()
            .unwrap()
            .out
            .clone();
        assert_eq!(drained, inline.out);
    }

    #[test]
    fn barrier_makes_midrun_reads_exact() {
        let mut ring = RingSink::new(
            RingConfig {
                chunk_frames: 8,
                capacity_chunks: 4,
                policy: BackpressurePolicy::Block,
            },
            vec![Box::new(CountingSink::new())],
        );
        for i in 0..37u64 {
            ring.record(&ev(i, 1));
        }
        ring.barrier();
        let seen = ring.with_sink_mut::<CountingSink, _>(|c| c.total).unwrap();
        assert_eq!(seen, 37, "barrier must make all 37 events visible");
        for i in 0..5u64 {
            ring.record(&ev(100 + i, 1));
        }
        let (bank, stats) = ring.finish();
        assert_eq!(stats.frames_written, 42);
        let c = bank[0].as_any().downcast_ref::<CountingSink>().unwrap();
        assert_eq!(c.total, 42);
    }

    #[test]
    fn drop_newest_counts_losses_and_never_blocks() {
        // A sink that sleeps long enough for the tiny ring to fill.
        struct SlowSink(u64);
        impl TraceSink for SlowSink {
            fn record(&mut self, _ev: &TraceEvent) {
                self.0 += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut ring = RingSink::new(
            RingConfig {
                chunk_frames: 1,
                capacity_chunks: 1,
                policy: BackpressurePolicy::DropNewest,
            },
            vec![Box::new(SlowSink(0))],
        );
        for i in 0..50u64 {
            ring.record(&ev(i, 2));
        }
        let (_, stats) = ring.finish();
        assert_eq!(stats.frames_written + stats.frames_dropped, 50);
        assert!(stats.frames_dropped > 0, "tiny ring + slow sink must drop");
        assert_eq!(stats.blocked_us, 0, "DropNewest must never block");
    }

    #[test]
    fn drop_newest_accounting_is_exact_and_drained_stream_is_a_prefix() {
        use crate::frame::{read_binary_trace, BinarySink, FRAME_LEN, HEADER_LEN};
        use std::sync::{Arc, Condvar, Mutex};

        /// `Write` into a shared buffer the test can read after the
        /// drain thread is gone.
        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        /// Gate in front of a binary sink: blocks the drain thread on
        /// the very first frame until the producer releases it, so the
        /// producer can fill the ring to a *known* state and every
        /// subsequent chunk is deterministically dropped.
        struct GateSink {
            inner: BinarySink<SharedBuf>,
            gate: Arc<(Mutex<(bool, bool)>, Condvar)>, // (started, released)
            seen: u64,
        }
        impl TraceSink for GateSink {
            fn record(&mut self, ev: &TraceEvent) {
                self.record_keyed(ev, ev.t(), 0);
            }
            fn record_keyed(&mut self, ev: &TraceEvent, at: u64, key: u64) {
                if self.seen == 0 {
                    let (lock, cv) = &*self.gate;
                    let mut g = lock.lock().unwrap();
                    g.0 = true;
                    cv.notify_all();
                    while !g.1 {
                        g = cv.wait(g).unwrap();
                    }
                }
                self.seen += 1;
                self.inner.record_keyed(ev, at, key);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        const CHUNK: usize = 4;
        const CAPACITY: usize = 2;
        const TOTAL: u64 = 40; // 10 full chunks
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let gate = Arc::new((Mutex::new((false, false)), Condvar::new()));
        let mut ring = RingSink::new(
            RingConfig {
                chunk_frames: CHUNK,
                capacity_chunks: CAPACITY,
                policy: BackpressurePolicy::DropNewest,
            },
            vec![Box::new(GateSink {
                inner: BinarySink::new(buf.clone()),
                gate: Arc::clone(&gate),
                seen: 0,
            })],
        );
        let mut inline = BinarySink::new(Vec::<u8>::new());
        for i in 0..TOTAL {
            let e = ev(i, (i % 3) as u32);
            inline.record_keyed(&e, i, i << 2);
            ring.record_keyed(&e, i, i << 2);
            if i as usize == CHUNK - 1 {
                // Chunk 1 was just pushed. Wait until the drain has
                // popped it (it blocks on the gate inside the sink), so
                // the ring is verifiably empty: chunks 2 and 3 will be
                // accepted, every later chunk deterministically dropped.
                let (lock, cv) = &*gate;
                let mut g = lock.lock().unwrap();
                while !g.0 {
                    g = cv.wait(g).unwrap();
                }
            }
        }
        {
            let (lock, cv) = &*gate;
            lock.lock().unwrap().1 = true;
            cv.notify_all();
        }
        let (_, stats) = ring.finish();

        // Exact accounting: chunk 1 drained, chunks 2..=3 buffered,
        // chunks 4..=10 refused.
        let accepted = ((1 + CAPACITY) * CHUNK) as u64;
        assert_eq!(stats.frames_written, accepted);
        assert_eq!(stats.frames_dropped, TOTAL - accepted);
        assert_eq!(stats.blocked_us, 0, "DropNewest must never block");

        // The drained capture is a decodable prefix of the inline
        // reference: same header, same first `accepted` frames.
        let drained = buf.0.lock().unwrap().clone();
        let reference = inline.into_inner();
        assert_eq!(drained.len(), HEADER_LEN + accepted as usize * FRAME_LEN);
        assert_eq!(drained[..], reference[..drained.len()]);
        let events = read_binary_trace(&drained[..]).expect("prefix decodes");
        let full = read_binary_trace(&reference[..]).expect("reference decodes");
        assert_eq!(events[..], full[..accepted as usize]);
    }

    #[test]
    fn merge_keyed_events_restores_total_order() {
        let shard_a = vec![(1, 10, ev(1, 0)), (3, 5, ev(3, 0)), (3, 9, ev(3, 0))];
        let shard_b = vec![(1, 2, ev(1, 1)), (3, 7, ev(3, 1)), (4, 1, ev(4, 1))];
        let merged = merge_keyed_events(vec![shard_a, shard_b]);
        let ts: Vec<u64> = merged.iter().map(|e| e.t()).collect();
        assert_eq!(ts, vec![1, 1, 3, 3, 3, 4]);
        // (at=1,key=2) from shard B must precede (at=1,key=10) from A.
        assert!(matches!(
            merged[0],
            TraceEvent::Rx {
                node: NodeId(1),
                ..
            }
        ));
    }
}
