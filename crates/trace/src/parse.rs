//! Minimal parser for the flat JSONL trace format.
//!
//! The trace wire form is deliberately restricted — one object per
//! line, string keys, scalar values (number / string / bool / null),
//! no nesting — so the parser can be small, dependency-free and strict.
//! Anything outside that subset is a hard error: the CI smoke step
//! relies on parse failures to catch format rot.

/// A scalar JSON value from a trace line.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// true / false.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
}

impl Value {
    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Num(n) if n >= 0.0 && n.fract() == 0.0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One parsed trace line: insertion-ordered key/value pairs.
pub type Record = Vec<(String, Value)>;

/// Look a key up in a [`Record`].
pub fn get<'a>(rec: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    rec.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.bump().ok_or_else(|| self.err("truncated escape"))?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = self.bump().ok_or_else(|| self.err("truncated \\u"))?;
                                let d = (h as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.err("bad \\u digit"))?;
                                code = code * 16 + d;
                            }
                            out.push(char::from_u32(code).ok_or_else(|| self.err("bad \\u code"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control char in string")),
                c => {
                    // Re-assemble UTF-8 multi-byte sequences verbatim.
                    let start = self.i - 1;
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    let chunk = self
                        .s
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.i = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("truncated value"))? {
            b'"' => Ok(Value::Str(self.string()?)),
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("nested values are not part of the trace format")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parse one trace line into a [`Record`]. Returns a descriptive error
/// for anything outside the flat-object subset.
pub fn parse_line(line: &str) -> Result<Record, String> {
    let mut p = Parser {
        s: line.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut rec = Record::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.i += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            let val = p.value()?;
            rec.push((key, val));
            p.skip_ws();
            match p.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(p.err("expected ',' or '}'")),
            }
        }
    }
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_typical_trace_line() {
        let rec = parse_line(
            r#"{"ev":"tx_start","t":42,"seq":7,"src":3,"dst":null,"tier":"sensor","bytes":32}"#,
        )
        .unwrap();
        assert_eq!(get(&rec, "ev").unwrap().as_str(), Some("tx_start"));
        assert_eq!(get(&rec, "t").unwrap().as_u64(), Some(42));
        assert_eq!(get(&rec, "dst"), Some(&Value::Null));
        assert_eq!(get(&rec, "missing"), None);
    }

    #[test]
    fn parses_floats_bools_and_escapes() {
        let rec = parse_line(r#"{"x":-1.5e3,"ok":true,"off":false,"s":"a\"b\\cA"}"#).unwrap();
        assert_eq!(get(&rec, "x").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(get(&rec, "ok"), Some(&Value::Bool(true)));
        assert_eq!(get(&rec, "s").unwrap().as_str(), Some("a\"b\\cA"));
        assert_eq!(get(&rec, "x").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_nesting_truncation_and_garbage() {
        assert!(parse_line(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_line(r#"{"a":[1]}"#).is_err());
        assert!(parse_line(r#"{"a":1"#).is_err());
        assert!(parse_line(r#"{"a":1} extra"#).is_err());
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{}").unwrap().is_empty());
    }

    #[test]
    fn round_trips_event_serialisation() {
        use crate::event::{TraceEvent, TraceKind, TraceTier};
        use wmsn_util::NodeId;
        let ev = TraceEvent::TxStart {
            t: 9,
            seq: 1,
            src: NodeId(2),
            dst: Some(NodeId(5)),
            tier: TraceTier::Mesh,
            kind: TraceKind::Control,
            bytes: 20,
        };
        let rec = parse_line(&ev.to_json().to_string()).unwrap();
        assert_eq!(get(&rec, "dst").unwrap().as_u64(), Some(5));
        assert_eq!(get(&rec, "tier").unwrap().as_str(), Some("mesh"));
    }
}
