//! Structured tracing and observability for the WMSN simulator.
//!
//! The simulator's end-of-run [`Metrics`] counters say *what* happened;
//! this crate records *why*: a compact structured event model covering
//! the full packet lifecycle (enqueue, tx-start, rx, drop-with-cause,
//! forward, deliver) plus protocol decision events (SPR RREQ floods and
//! cached-route answers, MLR route selection with the energy terms that
//! justified it, gateway moves, node sleep/kill).
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** The world holds an
//!    `Option<Box<dyn TraceSink>>`; every hook is a branch on that
//!    `Option`, and events are only *constructed* when a sink is
//!    installed. The PR-1 hot-path numbers must not move.
//! 2. **Deterministic output.** Event emission happens at points that
//!    are themselves deterministic (same seed → same schedule), and the
//!    JSONL serialisation uses the workspace's insertion-ordered
//!    [`wmsn_util::json::Json`] with fixed key order — so a trace file
//!    is byte-identical run to run for a fixed seed.
//! 3. **No external dependencies.** Serialisation, parsing and replay
//!    are all in-tree.
//!
//! [`Metrics`]: https://docs.rs/wmsn-sim

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod event;
pub mod frame;
pub mod hist;
pub mod parse;
pub mod replay;
pub mod ring;
pub mod sink;
pub mod structured;

pub use capture::{
    capture_counts, capture_drops_of_seq, capture_energy_of, capture_path_of, is_segmented_capture,
    merge_captures_with, CaptureConfig, CaptureCursor, CaptureReader, CaptureSink, CaptureStats,
    CaptureWriter, ScanFilter, ScanStats, SegmentMeta, CAPTURE_MAGIC, CAPTURE_VERSION,
    COMPACTED_OFFSET, DEFAULT_SEGMENT_FRAMES, EXT_MAGIC,
};
pub use event::{DropCause, TraceEvent, TraceKind, TraceTier};
pub use frame::{
    decode_frame, encode_frame, event_tag, is_binary_capture, read_binary_trace, tag_name,
    BinarySink, BinaryTraceReader, FRAME_LEN, FRAME_MAGIC, FRAME_VERSION, TAG_COUNT,
};
pub use hist::Histogram;
pub use parse::{parse_line, Value};
pub use replay::Replay;
pub use ring::{
    merge_keyed_events, merge_keyed_events_with, BackpressurePolicy, FrameBufferSink, RingConfig,
    RingSink, RingStats,
};
pub use sink::{
    merge_keyed_traces, BufferSink, CountingSink, JsonlSink, KeyedBufferSink, NullSink, TraceSink,
};
pub use structured::{log_error, log_record, record_line};
