//! A thin structured-logging facade for human-triggered output.
//!
//! Experiment tables, bench reports and CLI progress used to be ad-hoc
//! `println!` text; everything now goes through [`record_line`] so all
//! tool output shares one machine-parseable shape — the same flat
//! JSON-object-per-line format as the trace files, distinguished by a
//! leading `"record"` field instead of `"ev"`.

use wmsn_util::json::Json;

/// Format one structured record line: a compact JSON object whose
/// first field is `"record": kind`, followed by `fields` in order.
pub fn record_line(kind: &str, fields: Vec<(&'static str, Json)>) -> String {
    let mut all = Vec::with_capacity(fields.len() + 1);
    all.push(("record", Json::from(kind)));
    all.extend(fields);
    Json::obj(all).to_string()
}

/// Print one structured record line to stdout.
pub fn log_record(kind: &str, fields: Vec<(&'static str, Json)>) {
    println!("{}", record_line(kind, fields));
}

/// Print one structured record line to stderr (for errors / usage).
pub fn log_error(kind: &str, fields: Vec<(&'static str, Json)>) {
    eprintln!("{}", record_line(kind, fields));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lines_are_flat_parseable_json() {
        let line = record_line(
            "bench",
            vec![("name", Json::from("e1")), ("median_s", Json::from(0.5))],
        );
        assert_eq!(line, r#"{"record":"bench","name":"e1","median_s":0.5}"#);
        let rec = crate::parse::parse_line(&line).unwrap();
        assert_eq!(
            crate::parse::get(&rec, "record").unwrap().as_str(),
            Some("bench")
        );
    }
}
