//! `wmsn-bench` — shared plumbing for the per-experiment benches.
//!
//! Every bench target does two things:
//!
//! 1. **Regenerate its paper artefact**: run the corresponding experiment
//!    runner once (un-timed), print the report rows (the same
//!    rows/series EXPERIMENTS.md records), and archive them as JSON under
//!    `target/experiment-reports/`.
//! 2. **Time a representative kernel** with the in-repo [`harness`]
//!    (a Criterion-shaped shim, since the workspace builds offline), so
//!    performance regressions in the simulator/protocols are caught.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use std::path::PathBuf;
use wmsn_core::report::{print_rows, rows_to_json};
use wmsn_util::stats::ReportRow;

/// Print the experiment's rows and archive them as JSON.
pub fn emit(name: &str, rows: &[ReportRow]) {
    print_rows(name, rows);
    let dir = PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
        .join("experiment-reports");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if std::fs::write(&path, rows_to_json(rows)).is_ok() {
            wmsn_trace::log_record(
                "archive",
                vec![(
                    "path",
                    wmsn_util::json::Json::from(path.display().to_string()),
                )],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_writes_the_archive() {
        let rows = vec![ReportRow::new("T", "cfg", "metric", 1.0)];
        emit("selftest", &rows);
        let path =
            PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
                .join("experiment-reports/selftest.json");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("metric"));
    }
}
