//! End-to-end timing of the simulator's hot paths.
//!
//! Times the E9-scalability kernel (n = 800, analytic and fully
//! simulated) and the E17 seed sweep, and writes the tracked perf
//! baseline `BENCH_hotpath.json` at the repo root.
//!
//! Workflow:
//!
//! ```text
//! cargo run --release -p wmsn-bench --bin hotpath -- --label before
//! # ... land the optimisation ...
//! cargo run --release -p wmsn-bench --bin hotpath -- --label after
//! ```
//!
//! `--label before` snapshots timings to `BENCH_hotpath.before.json`;
//! `--label after` (the default) re-times, folds in the snapshot if one
//! exists, and writes `BENCH_hotpath.json` with before/after/speedup per
//! kernel. Repetitions default to 3 (min is reported; override with
//! `HOTPATH_REPS`).

use std::time::Instant;
use wmsn_bench::harness::fmt_secs;
use wmsn_core::experiments::{e17_seed_sweep, e9_scalability};
use wmsn_util::json::Json;

struct Kernel {
    name: &'static str,
    desc: &'static str,
    run: fn() -> usize,
}

const KERNELS: &[Kernel] = &[
    Kernel {
        name: "e9_n800_analytic",
        desc: "E9 scalability n=800: build + placement + hop fields (no event loop)",
        run: || e9_scalability(&[800], 17, false).len(),
    },
    Kernel {
        name: "e9_n800_sim",
        desc: "E9 scalability n=800: full SPR round simulation (transmit/deliver hot path)",
        run: || e9_scalability(&[800], 17, true).len(),
    },
    Kernel {
        name: "e17_sweep_8seeds",
        desc: "E17 robustness sweep: 8 seeded MLR rounds across cores",
        run: || {
            let seeds: Vec<u64> = (1..=8).collect();
            e17_seed_sweep(&seeds).len()
        },
    },
];

fn time_kernel(k: &Kernel, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..reps {
        let t = Instant::now();
        let rows = (k.run)();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        println!(
            "  {} rep {}/{}: {} ({} rows)",
            k.name,
            rep + 1,
            reps,
            fmt_secs(dt),
            rows
        );
    }
    best
}

/// Pull `"key": <float>` out of a JSON document this tool wrote earlier.
/// (The workspace has no JSON parser; the format is our own, so a
/// substring scan is exact enough.)
fn extract_f64(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = doc.find(&needle)? + needle.len();
    let rest = &doc[start..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = "after".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: hotpath [--label before|after]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let reps: usize = std::env::var("HOTPATH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    println!(
        "hotpath: timing {} kernels, {} reps each (label: {label})",
        KERNELS.len(),
        reps
    );
    let mut timings = Vec::new();
    for k in KERNELS {
        println!("{}: {}", k.name, k.desc);
        timings.push((k, time_kernel(k, reps)));
    }

    if label == "before" {
        let snap = Json::Obj(
            timings
                .iter()
                .map(|(k, s)| (format!("{}_before_s", k.name), Json::Num(*s)))
                .collect(),
        );
        std::fs::write("BENCH_hotpath.before.json", snap.to_string_pretty())
            .expect("write before snapshot");
        println!("wrote BENCH_hotpath.before.json");
        return;
    }

    let before_doc = std::fs::read_to_string("BENCH_hotpath.before.json").ok();
    let kernels = Json::Arr(
        timings
            .iter()
            .map(|(k, after_s)| {
                let mut pairs = vec![
                    ("kernel", Json::from(k.name)),
                    ("description", Json::from(k.desc)),
                    ("reps", Json::from(reps)),
                    ("after_s", Json::Num(*after_s)),
                ];
                if let Some(before_s) = before_doc
                    .as_deref()
                    .and_then(|doc| extract_f64(doc, &format!("{}_before_s", k.name)))
                {
                    pairs.push(("before_s", Json::Num(before_s)));
                    pairs.push(("speedup", Json::Num(before_s / after_s)));
                }
                Json::obj(pairs)
            })
            .collect(),
    );
    let doc = Json::obj([
        ("bench", Json::from("hotpath")),
        (
            "command",
            Json::from("cargo run --release -p wmsn-bench --bin hotpath -- --label after"),
        ),
        ("reps_policy", Json::from("min wall-clock over reps")),
        ("kernels", kernels),
    ]);
    std::fs::write("BENCH_hotpath.json", doc.to_string_pretty()).expect("write BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json");
    for (k, after_s) in &timings {
        if let Some(before_s) = before_doc
            .as_deref()
            .and_then(|doc| extract_f64(doc, &format!("{}_before_s", k.name)))
        {
            println!(
                "{:<20} before {:>12}  after {:>12}  speedup {:.2}x",
                k.name,
                fmt_secs(before_s),
                fmt_secs(*after_s),
                before_s / after_s
            );
        } else {
            println!(
                "{:<20} after {:>12} (no before snapshot)",
                k.name,
                fmt_secs(*after_s)
            );
        }
    }
}
