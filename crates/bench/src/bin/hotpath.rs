//! End-to-end timing of the simulator's hot paths.
//!
//! Times the E9-scalability kernel (n = 800, analytic and fully
//! simulated) and the E17 seed sweep, and writes the tracked perf
//! baseline `BENCH_hotpath.json` at the repo root. For the simulated
//! kernel it also records event-loop throughput (`events_per_sec`) and
//! the peak event-queue depth alongside wall time.
//!
//! Workflow:
//!
//! ```text
//! cargo run --release -p wmsn-bench --bin hotpath -- --label before
//! # ... land the optimisation ...
//! cargo run --release -p wmsn-bench --bin hotpath -- --label after
//! ```
//!
//! `--label before` snapshots timings to
//! `target/BENCH_hotpath.before.json` (under `CARGO_TARGET_DIR` when
//! set — scratch state, deliberately outside the working tree so a
//! bench run never dirties it); `--label after` (the default) re-times,
//! folds in the snapshot if one exists (falling back to a repo-root
//! `BENCH_hotpath.before.json` from older runs), and writes
//! `BENCH_hotpath.json` with before/after/speedup per kernel. Repetitions default to 3 (min is reported; override with
//! `HOTPATH_REPS`).
//!
//! Every kernel row carries a before/after pair. The `before_s` value
//! comes from, in order of preference: the `--label before` snapshot
//! (a timing of the pre-change build); the kernel's own built-in
//! baseline run (`baseline` — the same workload with the optimisation
//! switched off, e.g. the n=100k row timing the single-threaded
//! full-medium path against the sharded fast-path kernel); or carried
//! forward from the committed `BENCH_hotpath.json`.
//!
//! `--threads N` sets the worker-thread count for the sharded kernels
//! (default: available parallelism).
//!
//! `--check` is the CI smoke gate: it re-times the simulated E9 kernels
//! (n=800 reference and the n=100k sharded row) and exits non-zero if
//! wall time regressed more than 25% against the committed
//! `BENCH_hotpath.json` baseline.

use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use wmsn_core::experiments::{
    e17_seed_sweep, e9_event_stats, e9_event_stats_monitored, e9_event_stats_monitored_ring,
    e9_large, e9_large_monitored, e9_large_monitored_inline, e9_scalability,
};
use wmsn_core::params::ParallelConfig;
use wmsn_routing::wire::{rreq_append_forward, RoutingMsg};
use wmsn_trace::{log_error, log_record, CaptureStats, RingStats};
use wmsn_util::json::Json;
use wmsn_util::NodeId;

/// Where the `--label before` snapshot lives: under the cargo target
/// directory, never the working tree — a bench run must not dirty the
/// repo (only the committed `BENCH_hotpath.json` baseline is tracked).
fn before_snapshot_path() -> std::path::PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    std::path::PathBuf::from(target).join("BENCH_hotpath.before.json")
}

/// In-place flood-forward microbench: the per-hop RREQ rebroadcast
/// operation (validate header, memcpy the frame, patch the path count,
/// append our id) that the zero-copy control plane put on the hot path.
fn flood_forward_kernel() -> usize {
    const ITERS: usize = 1_000_000;
    let frame = RoutingMsg::Rreq {
        origin: NodeId(1),
        req_id: 42,
        path: (1..=12).map(NodeId).collect(),
        wanted: Vec::new(),
    }
    .encode();
    let mut out = Vec::with_capacity(frame.len() + 4);
    let mut acc = 0usize;
    for i in 0..ITERS {
        rreq_append_forward(black_box(&frame), NodeId(1000 + i as u32), &mut out)
            .expect("valid frame");
        acc = acc.wrapping_add(black_box(&out).len());
    }
    acc
}

/// Worker-thread count for the sharded kernels (`--threads`, default
/// available parallelism). A process-wide atomic so the `fn()`-typed
/// kernel entries below can read it without captures.
static THREADS: AtomicUsize = AtomicUsize::new(0);

fn bench_threads() -> usize {
    THREADS.load(Ordering::Relaxed).max(1)
}

/// Sources reporting in the n=100k round. Route caches only populate
/// along reply paths, so *every* cache-cold SPR discovery is a
/// near-network-wide flood (~3M events at this density) — the source
/// count, not `n`, sets the event budget. Three stride-spaced sources
/// (~10M events) keep the round interactive and the CI `--check`
/// re-timing affordable while still flooding every shard seam.
const N100K_SOURCES: usize = 3;

/// Un-timed statistics run for ring-pipeline kernels: `(events
/// processed, peak queue depth, ring telemetry, capture telemetry for
/// kernels that stream their trace to disk)`.
type RingStatsFn = fn() -> (u64, usize, RingStats, Option<CaptureStats>);

/// The monitored n=100k round with its trace streamed to per-shard
/// segmented capture files in a scratch directory (deleted afterwards)
/// instead of buffered in memory — the configuration the
/// `e9_n100k_sim_monitored` row times.
fn n100k_monitored_captured() -> (
    wmsn_core::experiments::E9LargeSummary,
    RingStats,
    u64,
    CaptureStats,
) {
    let dir = std::env::temp_dir().join(format!(
        "wmsn-hotpath-capture-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    ));
    std::fs::create_dir_all(&dir).expect("create capture scratch dir");
    let (s, r, alerts, cap) = e9_large_monitored(
        100_000,
        17,
        N100K_SOURCES,
        Some(ParallelConfig::per_thread(bench_threads())),
        Some(&dir),
    );
    let _ = std::fs::remove_dir_all(&dir);
    (s, r, alerts, cap.expect("capture telemetry"))
}

struct Kernel {
    name: &'static str,
    desc: &'static str,
    run: fn() -> usize,
    /// Optional built-in baseline: the same workload with the
    /// optimisation under test switched off. Timed in the same
    /// invocation and used as `before_s` when no `--label before`
    /// snapshot covers this kernel.
    baseline: Option<fn() -> usize>,
    /// Optional event-loop statistics: `(events processed, peak queue
    /// depth)` for one un-timed run of the same kernel.
    event_stats: Option<fn() -> (u64, usize)>,
    /// For ring-pipeline kernels: one un-timed run returning the
    /// event-loop statistics *plus* the ring's backpressure telemetry
    /// (frames written/dropped, blocked-µs, peak occupancy). Supersedes
    /// `event_stats` when present.
    ring_stats: Option<RingStatsFn>,
}

const KERNELS: &[Kernel] = &[
    Kernel {
        name: "e9_n800_analytic",
        desc: "E9 scalability n=800: build + placement + hop fields (no event loop)",
        run: || e9_scalability(&[800], 17, false).len(),
        baseline: None,
        event_stats: None,
        ring_stats: None,
    },
    Kernel {
        name: "e9_n800_sim",
        desc: "E9 scalability n=800: full SPR round simulation (transmit/deliver hot path)",
        run: || e9_scalability(&[800], 17, true).len(),
        baseline: None,
        event_stats: Some(|| e9_event_stats(800, 17)),
        ring_stats: None,
    },
    Kernel {
        name: "e9_n800_sim_monitored",
        desc: "E9 n=800 SPR rounds monitored through the ring pipeline: the sim thread copies TraceEvent frames into a bounded SPSC ring and the health monitor's detector bank runs on the drain thread (monitor-enabled row; e9_n800_sim above is the one-branch disabled cost, which this change leaves untouched); built-in baseline is the pre-ring inline pipeline (monitor installed directly as the trace sink). NOTE: on a single-core host the drain thread cannot overlap the sim thread, so the enabled cost here is an upper bound — on multi-core hosts the detector work runs concurrently with the simulation",
        run: || e9_event_stats_monitored_ring(800, 17).0 as usize,
        baseline: Some(|| e9_event_stats_monitored(800, 17).0 as usize),
        event_stats: None,
        ring_stats: Some(|| {
            let (events, peak, ring) = e9_event_stats_monitored_ring(800, 17);
            (events, peak, ring, None)
        }),
    },
    Kernel {
        name: "e9_n100k_sim",
        desc: "E9 large: n=100k three-tier SPR round on the sharded kernel (one strip shard per --threads worker, unicast fast path on); built-in baseline is the same round on the single-threaded reference kernel with the fast path off — the tracked before_s comes from the snapshot: the pre-PR kernel (dense per-origin dedup tables) on this exact workload",
        run: || {
            e9_large(
                100_000,
                17,
                N100K_SOURCES,
                true,
                Some(ParallelConfig::per_thread(bench_threads())),
            )
            .events as usize
        },
        baseline: Some(|| e9_large(100_000, 17, N100K_SOURCES, false, None).events as usize),
        event_stats: Some(|| {
            let s = e9_large(
                100_000,
                17,
                N100K_SOURCES,
                true,
                Some(ParallelConfig::per_thread(bench_threads())),
            );
            (s.events, s.peak_queue_depth)
        }),
        ring_stats: None,
    },
    Kernel {
        name: "e9_n100k_sim_monitored",
        desc: "E9 large: the n=100k sharded round with full health monitoring and disk-streamed captures — per-shard ring pipelines hand (at,key,event) frames to per-shard CaptureSinks whose drain threads encode and write segmented capture files, then one monitor consumes the k-way merged on-disk stream (same causal order as the in-memory merge: deterministic, kernel-independent verdicts) with one segment per shard resident instead of every frame; built-in baseline is the best pre-ring monitored configuration: the single-threaded reference kernel with the monitor inline as its trace sink (the sharded kernel cannot host an inline monitor, and a JSONL pipe at this scale is off the chart — this row did not exist before the ring pipeline)",
        run: || n100k_monitored_captured().0.events as usize,
        baseline: Some(|| e9_large_monitored_inline(100_000, 17, N100K_SOURCES).events as usize),
        event_stats: None,
        ring_stats: Some(|| {
            let (s, r, _alerts, cap) = n100k_monitored_captured();
            (s.events, s.peak_queue_depth, r, Some(cap))
        }),
    },
    Kernel {
        name: "e17_sweep_8seeds",
        desc: "E17 robustness sweep: 8 seeded MLR rounds across cores",
        run: || {
            let seeds: Vec<u64> = (1..=8).collect();
            e17_seed_sweep(&seeds).len()
        },
        baseline: None,
        event_stats: None,
        ring_stats: None,
    },
    Kernel {
        name: "flood_forward",
        desc: "RREQ append-forward microbench: 1M in-place forwards of a 12-hop query",
        run: flood_forward_kernel,
        baseline: None,
        event_stats: None,
        ring_stats: None,
    },
];

fn time_fn(name: &str, f: fn() -> usize, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..reps {
        let t = Instant::now();
        let rows = f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        log_record(
            "hotpath_rep",
            vec![
                ("kernel", Json::from(name.to_string())),
                ("rep", Json::from(rep + 1)),
                ("reps", Json::from(reps)),
                ("seconds", Json::Num(dt)),
                ("rows", Json::from(rows)),
            ],
        );
    }
    best
}

fn time_kernel(k: &Kernel, reps: usize) -> f64 {
    time_fn(k.name, k.run, reps)
}

/// Pull `"key": <float>` out of a JSON document this tool wrote earlier.
/// (The workspace has no JSON parser; the format is our own, so a
/// substring scan is exact enough.)
fn extract_f64(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = doc.find(&needle)? + needle.len();
    let rest = &doc[start..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Pull `"key": <float>` scoped to one entry of the tracked baseline's
/// `kernels` array: scan to the entry's `"kernel": "<name>"` first.
fn extract_kernel_f64(doc: &str, kernel: &str, key: &str) -> Option<f64> {
    let anchor = format!("\"kernel\": \"{kernel}\"");
    let start = doc.find(&anchor)? + anchor.len();
    extract_f64(&doc[start..], key)
}

/// Pull `"key": "<string>"` out of a JSON document this tool (or a
/// hand-annotated snapshot) wrote. Same substring-scan contract as
/// [`extract_f64`]; escapes are not interpreted (none are written).
fn extract_string(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = doc.find(&needle)? + needle.len();
    let rest = &doc[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// `--check`: re-time the simulated E9 kernels (the n=800 reference
/// round — unmonitored and monitored-through-the-ring — and the
/// n=100k sharded round) and fail (exit 1) if any regressed more than
/// 25% against the committed `BENCH_hotpath.json` baseline — the CI
/// smoke gate for the simulator hot path. A kernel absent from the
/// baseline fails the gate (exit 2) rather than passing silently.
fn run_check(reps: usize) -> ! {
    // Per-kernel regression tolerance. The plain sim rows get the
    // standard 25%. The ring-hosted monitored row runs a drain thread
    // next to a ~0.1s workload, and on a single-core host its wall
    // clock is dominated by scheduler placement — ±30% rep-to-rep is
    // normal — so it gets a looser gate: the row exists to catch
    // step-change regressions (a stalled ring, an accidental inline
    // fallback), not scheduling jitter.
    const CHECK_KERNELS: &[(&str, f64)] = &[
        ("e9_n800_sim", 1.25),
        ("e9_n800_sim_monitored", 1.6),
        ("e9_n100k_sim", 1.25),
    ];
    let doc = match std::fs::read_to_string("BENCH_hotpath.json") {
        Ok(doc) => doc,
        Err(e) => {
            log_error(
                "hotpath_check_error",
                vec![
                    ("missing_baseline", Json::from("BENCH_hotpath.json")),
                    ("error", Json::from(e.to_string())),
                ],
            );
            std::process::exit(2);
        }
    };
    let mut failed = false;
    for (name, max_ratio) in CHECK_KERNELS {
        let Some(baseline_s) = extract_kernel_f64(&doc, name, "after_s") else {
            log_error(
                "hotpath_check_error",
                vec![("kernel_not_in_baseline", Json::from(*name))],
            );
            std::process::exit(2);
        };
        let k = KERNELS
            .iter()
            .find(|k| k.name == *name)
            .expect("check kernel is registered");
        let now_s = time_kernel(k, reps);
        let ratio = now_s / baseline_s;
        log_record(
            "hotpath_check",
            vec![
                ("kernel", Json::from(*name)),
                ("baseline_s", Json::Num(baseline_s)),
                ("now_s", Json::Num(now_s)),
                ("ratio", Json::Num(ratio)),
                ("max_ratio", Json::Num(*max_ratio)),
            ],
        );
        if ratio > *max_ratio {
            failed = true;
            log_error(
                "hotpath_check_failed",
                vec![
                    ("kernel", Json::from(*name)),
                    ("regression_pct", Json::Num((ratio - 1.0) * 100.0)),
                ],
            );
        }
    }
    std::process::exit(i32::from(failed));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = "after".to_string();
    let mut check = false;
    let mut threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        log_error(
                            "hotpath_error",
                            vec![(
                                "bad_threads",
                                Json::from(args.get(i + 1).cloned().unwrap_or_default()),
                            )],
                        );
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            "--help" | "-h" => {
                println!("usage: hotpath [--label before|after] [--threads N] [--check]");
                return;
            }
            other => {
                log_error(
                    "hotpath_error",
                    vec![("unknown_argument", Json::from(other.to_string()))],
                );
                std::process::exit(2);
            }
        }
    }
    THREADS.store(threads, Ordering::Relaxed);
    let reps: usize = std::env::var("HOTPATH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    if check {
        run_check(reps);
    }

    log_record(
        "hotpath_start",
        vec![
            ("kernels", Json::from(KERNELS.len())),
            ("reps", Json::from(reps)),
            ("threads", Json::from(threads)),
            ("label", Json::from(label.clone())),
        ],
    );
    let mut timings = Vec::new();
    for k in KERNELS {
        log_record(
            "hotpath_kernel",
            vec![
                ("kernel", Json::from(k.name)),
                ("description", Json::from(k.desc)),
            ],
        );
        timings.push((k, time_kernel(k, reps)));
    }

    if label == "before" {
        let snap = Json::Obj(
            timings
                .iter()
                .map(|(k, s)| (format!("{}_before_s", k.name), Json::Num(*s)))
                .collect(),
        );
        let path = before_snapshot_path();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create snapshot dir");
        }
        std::fs::write(&path, snap.to_string_pretty()).expect("write before snapshot");
        log_record(
            "hotpath_wrote",
            vec![("path", Json::from(path.display().to_string()))],
        );
        return;
    }

    let before_doc = std::fs::read_to_string(before_snapshot_path())
        .or_else(|_| std::fs::read_to_string("BENCH_hotpath.before.json"))
        .ok();
    let committed_doc = std::fs::read_to_string("BENCH_hotpath.json").ok();
    // Uniform before/after pairing: snapshot first, then the kernel's
    // built-in baseline (timed now, same machine, same build), then the
    // pair carried forward from the committed baseline. `before_source`
    // records which one each row used; a `<kernel>_before_note` string
    // in the snapshot (how that baseline was obtained, e.g. a bounded
    // lower-bound run) is carried into the row as `before_note`.
    let mut befores: Vec<Option<(f64, &'static str, Option<String>)>> = Vec::new();
    for (k, _) in &timings {
        let resolved = if let Some(s) = before_doc
            .as_deref()
            .and_then(|doc| extract_f64(doc, &format!("{}_before_s", k.name)))
        {
            let note = before_doc
                .as_deref()
                .and_then(|doc| extract_string(doc, &format!("{}_before_note", k.name)));
            Some((s, "label_before_snapshot", note))
        } else if let Some(baseline) = k.baseline {
            log_record("hotpath_baseline", vec![("kernel", Json::from(k.name))]);
            Some((
                time_fn(&format!("{}_baseline", k.name), baseline, reps),
                "builtin_baseline",
                None,
            ))
        } else {
            committed_doc
                .as_deref()
                .and_then(|doc| extract_kernel_f64(doc, k.name, "before_s"))
                .map(|s| (s, "carried_forward", None))
        };
        befores.push(resolved);
    }
    let kernels = Json::Arr(
        timings
            .iter()
            .zip(&befores)
            .map(|((k, after_s), before)| {
                let mut pairs = vec![
                    ("kernel", Json::from(k.name)),
                    ("description", Json::from(k.desc)),
                    ("reps", Json::from(reps)),
                    ("after_s", Json::Num(*after_s)),
                ];
                if k.name.contains("n100k") {
                    pairs.push(("threads", Json::from(threads)));
                }
                if let Some(stats) = k.ring_stats {
                    let (events, peak, ring, capture) = stats();
                    pairs.push(("events", Json::from(events)));
                    pairs.push(("events_per_sec", Json::Num(events as f64 / after_s)));
                    pairs.push(("peak_queue_depth", Json::from(peak)));
                    pairs.push(("ring_frames_written", Json::from(ring.frames_written)));
                    pairs.push(("ring_frames_dropped", Json::from(ring.frames_dropped)));
                    pairs.push(("ring_blocked_us", Json::from(ring.blocked_us)));
                    pairs.push(("ring_peak_chunks", Json::from(ring.peak_chunks)));
                    pairs.push(("ring_capacity_chunks", Json::from(ring.capacity_chunks)));
                    pairs.push(("ring_chunk_frames", Json::from(ring.chunk_frames)));
                    if let Some(cap) = capture {
                        pairs.push(("capture_bytes_written", Json::from(cap.bytes)));
                        pairs.push(("capture_segments", Json::from(cap.segments)));
                        pairs.push(("capture_frames", Json::from(cap.frames)));
                        pairs.push(("capture_frames_dropped", Json::from(cap.frames_dropped)));
                        // Effective write rate over the whole timed
                        // round (sim + encode + write + merge), not a
                        // raw disk number.
                        pairs.push((
                            "capture_write_mb_per_s",
                            Json::Num(cap.bytes as f64 / 1e6 / after_s),
                        ));
                    }
                } else if let Some(stats) = k.event_stats {
                    let (events, peak) = stats();
                    pairs.push(("events", Json::from(events)));
                    pairs.push(("events_per_sec", Json::Num(events as f64 / after_s)));
                    pairs.push(("peak_queue_depth", Json::from(peak)));
                }
                if let Some((before_s, source, note)) = before {
                    pairs.push(("before_s", Json::Num(*before_s)));
                    pairs.push(("speedup", Json::Num(before_s / after_s)));
                    pairs.push(("before_source", Json::from(*source)));
                    if let Some(note) = note {
                        pairs.push(("before_note", Json::from(note.clone())));
                    }
                }
                Json::obj(pairs)
            })
            .collect(),
    );
    let doc = Json::obj([
        ("bench", Json::from("hotpath")),
        (
            "command",
            Json::from("cargo run --release -p wmsn-bench --bin hotpath -- --label after"),
        ),
        ("reps_policy", Json::from("min wall-clock over reps")),
        ("kernels", kernels),
    ]);
    std::fs::write("BENCH_hotpath.json", doc.to_string_pretty()).expect("write BENCH_hotpath.json");
    log_record(
        "hotpath_wrote",
        vec![("path", Json::from("BENCH_hotpath.json"))],
    );
    for ((k, after_s), before) in timings.iter().zip(&befores) {
        let mut fields = vec![
            ("kernel", Json::from(k.name)),
            ("after_s", Json::Num(*after_s)),
        ];
        if let Some((before_s, _, _)) = before {
            fields.push(("before_s", Json::Num(*before_s)));
            fields.push(("speedup", Json::Num(before_s / after_s)));
        }
        log_record("hotpath_result", fields);
    }
}
