//! End-to-end timing of the simulator's hot paths.
//!
//! Times the E9-scalability kernel (n = 800, analytic and fully
//! simulated) and the E17 seed sweep, and writes the tracked perf
//! baseline `BENCH_hotpath.json` at the repo root. For the simulated
//! kernel it also records event-loop throughput (`events_per_sec`) and
//! the peak event-queue depth alongside wall time.
//!
//! Workflow:
//!
//! ```text
//! cargo run --release -p wmsn-bench --bin hotpath -- --label before
//! # ... land the optimisation ...
//! cargo run --release -p wmsn-bench --bin hotpath -- --label after
//! ```
//!
//! `--label before` snapshots timings to `BENCH_hotpath.before.json`;
//! `--label after` (the default) re-times, folds in the snapshot if one
//! exists, and writes `BENCH_hotpath.json` with before/after/speedup per
//! kernel. Repetitions default to 3 (min is reported; override with
//! `HOTPATH_REPS`).
//!
//! `--check` is the CI smoke gate: it re-times only the simulated E9
//! kernel and exits non-zero if the wall time regressed more than 25%
//! against the committed `BENCH_hotpath.json` baseline.

use std::hint::black_box;
use std::time::Instant;
use wmsn_core::experiments::{
    e17_seed_sweep, e9_event_stats, e9_event_stats_monitored, e9_scalability,
};
use wmsn_routing::wire::{rreq_append_forward, RoutingMsg};
use wmsn_trace::{log_error, log_record};
use wmsn_util::json::Json;
use wmsn_util::NodeId;

/// In-place flood-forward microbench: the per-hop RREQ rebroadcast
/// operation (validate header, memcpy the frame, patch the path count,
/// append our id) that the zero-copy control plane put on the hot path.
fn flood_forward_kernel() -> usize {
    const ITERS: usize = 1_000_000;
    let frame = RoutingMsg::Rreq {
        origin: NodeId(1),
        req_id: 42,
        path: (1..=12).map(NodeId).collect(),
        wanted: Vec::new(),
    }
    .encode();
    let mut out = Vec::with_capacity(frame.len() + 4);
    let mut acc = 0usize;
    for i in 0..ITERS {
        rreq_append_forward(black_box(&frame), NodeId(1000 + i as u32), &mut out)
            .expect("valid frame");
        acc = acc.wrapping_add(black_box(&out).len());
    }
    acc
}

struct Kernel {
    name: &'static str,
    desc: &'static str,
    run: fn() -> usize,
    /// Optional event-loop statistics: `(events processed, peak queue
    /// depth)` for one un-timed run of the same kernel.
    event_stats: Option<fn() -> (u64, usize)>,
}

const KERNELS: &[Kernel] = &[
    Kernel {
        name: "e9_n800_analytic",
        desc: "E9 scalability n=800: build + placement + hop fields (no event loop)",
        run: || e9_scalability(&[800], 17, false).len(),
        event_stats: None,
    },
    Kernel {
        name: "e9_n800_sim",
        desc: "E9 scalability n=800: full SPR round simulation (transmit/deliver hot path)",
        run: || e9_scalability(&[800], 17, true).len(),
        event_stats: Some(|| e9_event_stats(800, 17)),
    },
    Kernel {
        name: "e9_n800_sim_monitored",
        desc: "E9 n=800 SPR rounds with the health monitor installed as trace sink (monitor-enabled row; e9_n800_sim above is the one-branch disabled cost)",
        run: || e9_event_stats_monitored(800, 17).0 as usize,
        event_stats: Some(|| e9_event_stats_monitored(800, 17)),
    },
    Kernel {
        name: "e17_sweep_8seeds",
        desc: "E17 robustness sweep: 8 seeded MLR rounds across cores",
        run: || {
            let seeds: Vec<u64> = (1..=8).collect();
            e17_seed_sweep(&seeds).len()
        },
        event_stats: None,
    },
    Kernel {
        name: "flood_forward",
        desc: "RREQ append-forward microbench: 1M in-place forwards of a 12-hop query",
        run: flood_forward_kernel,
        event_stats: None,
    },
];

fn time_kernel(k: &Kernel, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..reps {
        let t = Instant::now();
        let rows = (k.run)();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        log_record(
            "hotpath_rep",
            vec![
                ("kernel", Json::from(k.name)),
                ("rep", Json::from(rep + 1)),
                ("reps", Json::from(reps)),
                ("seconds", Json::Num(dt)),
                ("rows", Json::from(rows)),
            ],
        );
    }
    best
}

/// Pull `"key": <float>` out of a JSON document this tool wrote earlier.
/// (The workspace has no JSON parser; the format is our own, so a
/// substring scan is exact enough.)
fn extract_f64(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = doc.find(&needle)? + needle.len();
    let rest = &doc[start..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Pull `"key": <float>` scoped to one entry of the tracked baseline's
/// `kernels` array: scan to the entry's `"kernel": "<name>"` first.
fn extract_kernel_f64(doc: &str, kernel: &str, key: &str) -> Option<f64> {
    let anchor = format!("\"kernel\": \"{kernel}\"");
    let start = doc.find(&anchor)? + anchor.len();
    extract_f64(&doc[start..], key)
}

/// `--check`: re-time the simulated E9 kernel and fail (exit 1) if it
/// regressed more than 25% against the committed `BENCH_hotpath.json`
/// baseline — the CI smoke gate for the simulator hot path.
fn run_check(reps: usize) -> ! {
    const CHECK_KERNEL: &str = "e9_n800_sim";
    const MAX_RATIO: f64 = 1.25;
    let doc = match std::fs::read_to_string("BENCH_hotpath.json") {
        Ok(doc) => doc,
        Err(e) => {
            log_error(
                "hotpath_check_error",
                vec![
                    ("missing_baseline", Json::from("BENCH_hotpath.json")),
                    ("error", Json::from(e.to_string())),
                ],
            );
            std::process::exit(2);
        }
    };
    let Some(baseline_s) = extract_kernel_f64(&doc, CHECK_KERNEL, "after_s") else {
        log_error(
            "hotpath_check_error",
            vec![("kernel_not_in_baseline", Json::from(CHECK_KERNEL))],
        );
        std::process::exit(2);
    };
    let k = KERNELS
        .iter()
        .find(|k| k.name == CHECK_KERNEL)
        .expect("check kernel is registered");
    let now_s = time_kernel(k, reps);
    let ratio = now_s / baseline_s;
    log_record(
        "hotpath_check",
        vec![
            ("kernel", Json::from(CHECK_KERNEL)),
            ("baseline_s", Json::Num(baseline_s)),
            ("now_s", Json::Num(now_s)),
            ("ratio", Json::Num(ratio)),
            ("max_ratio", Json::Num(MAX_RATIO)),
        ],
    );
    if ratio > MAX_RATIO {
        log_error(
            "hotpath_check_failed",
            vec![
                ("kernel", Json::from(CHECK_KERNEL)),
                ("regression_pct", Json::Num((ratio - 1.0) * 100.0)),
            ],
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = "after".to_string();
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            "--help" | "-h" => {
                println!("usage: hotpath [--label before|after] [--check]");
                return;
            }
            other => {
                log_error(
                    "hotpath_error",
                    vec![("unknown_argument", Json::from(other.to_string()))],
                );
                std::process::exit(2);
            }
        }
    }
    let reps: usize = std::env::var("HOTPATH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    if check {
        run_check(reps);
    }

    log_record(
        "hotpath_start",
        vec![
            ("kernels", Json::from(KERNELS.len())),
            ("reps", Json::from(reps)),
            ("label", Json::from(label.clone())),
        ],
    );
    let mut timings = Vec::new();
    for k in KERNELS {
        log_record(
            "hotpath_kernel",
            vec![
                ("kernel", Json::from(k.name)),
                ("description", Json::from(k.desc)),
            ],
        );
        timings.push((k, time_kernel(k, reps)));
    }

    if label == "before" {
        let snap = Json::Obj(
            timings
                .iter()
                .map(|(k, s)| (format!("{}_before_s", k.name), Json::Num(*s)))
                .collect(),
        );
        std::fs::write("BENCH_hotpath.before.json", snap.to_string_pretty())
            .expect("write before snapshot");
        log_record(
            "hotpath_wrote",
            vec![("path", Json::from("BENCH_hotpath.before.json"))],
        );
        return;
    }

    let before_doc = std::fs::read_to_string("BENCH_hotpath.before.json").ok();
    let kernels = Json::Arr(
        timings
            .iter()
            .map(|(k, after_s)| {
                let mut pairs = vec![
                    ("kernel", Json::from(k.name)),
                    ("description", Json::from(k.desc)),
                    ("reps", Json::from(reps)),
                    ("after_s", Json::Num(*after_s)),
                ];
                if let Some(stats) = k.event_stats {
                    let (events, peak) = stats();
                    pairs.push(("events", Json::from(events)));
                    pairs.push(("events_per_sec", Json::Num(events as f64 / after_s)));
                    pairs.push(("peak_queue_depth", Json::from(peak)));
                }
                if let Some(before_s) = before_doc
                    .as_deref()
                    .and_then(|doc| extract_f64(doc, &format!("{}_before_s", k.name)))
                {
                    pairs.push(("before_s", Json::Num(before_s)));
                    pairs.push(("speedup", Json::Num(before_s / after_s)));
                }
                Json::obj(pairs)
            })
            .collect(),
    );
    let doc = Json::obj([
        ("bench", Json::from("hotpath")),
        (
            "command",
            Json::from("cargo run --release -p wmsn-bench --bin hotpath -- --label after"),
        ),
        ("reps_policy", Json::from("min wall-clock over reps")),
        ("kernels", kernels),
    ]);
    std::fs::write("BENCH_hotpath.json", doc.to_string_pretty()).expect("write BENCH_hotpath.json");
    log_record(
        "hotpath_wrote",
        vec![("path", Json::from("BENCH_hotpath.json"))],
    );
    for (k, after_s) in &timings {
        let mut fields = vec![
            ("kernel", Json::from(k.name)),
            ("after_s", Json::Num(*after_s)),
        ];
        if let Some(before_s) = before_doc
            .as_deref()
            .and_then(|doc| extract_f64(doc, &format!("{}_before_s", k.name)))
        {
            fields.push(("before_s", Json::Num(before_s)));
            fields.push(("speedup", Json::Num(before_s / after_s)));
        }
        log_record("hotpath_result", fields);
    }
}
