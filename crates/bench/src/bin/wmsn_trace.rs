//! `wmsn-trace` — record and interrogate simulator trace files.
//!
//! Trace-driven debugging for the WMSN simulator: record a small
//! experiment with a file sink installed, then replay the capture to
//! answer "show the path of msg N", "why was packet X dropped", and
//! "what is node K's energy timeline".
//!
//! ```text
//! wmsn-trace record  <out> [seed] [rounds] [--bin]  # run E1 (SPR, 40 sensors) traced
//! wmsn-trace summary <trace>                        # event counts; exits 1 on parse errors
//! wmsn-trace path    <trace> <origin> <msg_id>
//! wmsn-trace drop    <trace> <seq>
//! wmsn-trace energy  <trace> <node>
//! wmsn-trace health  <trace>                        # run the health monitor offline
//! wmsn-trace alerts  <trace>                        # just the alert JSONL stream
//! wmsn-trace top     <trace> [k]                    # k busiest nodes by tx (default 10)
//! wmsn-trace convert <in> <out>                     # bin→jsonl or jsonl→bin (by input format)
//! ```
//!
//! Every query accepts **either format**: the input is sniffed by its
//! first bytes (binary captures open with the `WMSNTRB` magic; JSONL
//! opens with `{`), so traces recorded through the ring pipeline's
//! binary sink work everywhere a JSONL file does. `convert` translates
//! between the two — bin→jsonl output is byte-identical to what the
//! live `JsonlSink` writes (pinned by the golden test), jsonl→bin
//! stamps `at = t, key = 0` since JSONL carries no causal keys.
//!
//! `health`/`alerts`/`top` replay the recorded trace through the same
//! `wmsn_health::HealthMonitor` the simulator installs online, so an
//! offline fingerprint matches the live one byte for byte.
//!
//! All output is structured records (one flat JSON object per line);
//! malformed traces and missing messages exit non-zero, which is what
//! the CI step relies on.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use wmsn_core::builder::build_spr;
use wmsn_core::drivers::SprDriver;
use wmsn_core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn_health::{HealthConfig, HealthMonitor};
use wmsn_trace::frame::write_header;
use wmsn_trace::{
    encode_frame, is_binary_capture, log_error, log_record, read_binary_trace, BinarySink,
    JsonlSink, Replay, TraceEvent, TraceSink,
};
use wmsn_util::json::Json;

fn usage() -> ! {
    println!(
        "usage: wmsn-trace record  <out> [seed] [rounds] [--bin]\n\
         \x20      wmsn-trace summary <trace>\n\
         \x20      wmsn-trace path    <trace> <origin> <msg_id>\n\
         \x20      wmsn-trace drop    <trace> <seq>\n\
         \x20      wmsn-trace energy  <trace> <node>\n\
         \x20      wmsn-trace health  <trace>\n\
         \x20      wmsn-trace alerts  <trace>\n\
         \x20      wmsn-trace top     <trace> [k]\n\
         \x20      wmsn-trace convert <in> <out>\n\
         (<trace> may be JSONL or a binary capture; the format is sniffed)"
    );
    std::process::exit(2);
}

fn die(path: &str, error: String) -> ! {
    log_error(
        "trace_error",
        vec![
            ("path", Json::from(path.to_string())),
            ("error", Json::from(error)),
        ],
    );
    std::process::exit(1);
}

/// Whether the file at `path` is a binary trace capture (by magic).
fn sniff_binary(path: &str) -> bool {
    let mut head = [0u8; 8];
    let Ok(mut f) = File::open(path) else {
        return false; // let the real open report the error
    };
    match f.read(&mut head) {
        Ok(n) => is_binary_capture(&head[..n]),
        Err(_) => false,
    }
}

/// Decode a binary capture into events (exits non-zero on corruption).
fn read_binary_events(path: &str) -> Vec<TraceEvent> {
    let file = File::open(path).unwrap_or_else(|e| die(path, e.to_string()));
    let frames = read_binary_trace(BufReader::new(file)).unwrap_or_else(|e| {
        log_error(
            "trace_parse_error",
            vec![
                ("path", Json::from(path.to_string())),
                ("error", Json::from(e)),
            ],
        );
        std::process::exit(1);
    });
    frames.into_iter().map(|(ev, _, _)| ev).collect()
}

fn parse_u64(s: &str, what: &'static str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        log_error(
            "trace_error",
            vec![
                ("expected", Json::from(what)),
                ("got", Json::from(s.to_string())),
            ],
        );
        std::process::exit(2);
    })
}

fn load(path: &str) -> Replay {
    if sniff_binary(path) {
        return Replay::from_events(&read_binary_events(path));
    }
    let file = File::open(path).unwrap_or_else(|e| die(path, e.to_string()));
    Replay::from_reader(BufReader::new(file)).unwrap_or_else(|e| {
        log_error(
            "trace_parse_error",
            vec![
                ("path", Json::from(path.to_string())),
                ("error", Json::from(e)),
            ],
        );
        std::process::exit(1);
    })
}

/// Run the E1 kernel (SPR over 40 uniformly deployed sensors, three
/// gateways) with a file sink installed, for `rounds` rounds. `binary`
/// selects the fixed-frame binary sink over JSONL.
fn record(out: &str, seed: u64, rounds: u32, binary: bool) {
    let file = File::create(out).unwrap_or_else(|e| die(out, e.to_string()));
    let field = FieldParams::default_uniform(40, seed);
    let scen = build_spr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
    );
    let mut driver = SprDriver::new(scen);
    let sink: Box<dyn TraceSink> = if binary {
        Box::new(BinarySink::new(BufWriter::new(file)))
    } else {
        Box::new(JsonlSink::new(BufWriter::new(file)))
    };
    driver.scenario.world.set_trace_sink(sink);
    for _ in 0..rounds {
        driver.run_round();
    }
    let sink = driver
        .scenario
        .world
        .take_trace_sink()
        .expect("sink was installed");
    let lines = if binary {
        sink.as_any()
            .downcast_ref::<BinarySink<BufWriter<File>>>()
            .map(BinarySink::frames_written)
            .unwrap_or(0)
    } else {
        sink.as_any()
            .downcast_ref::<JsonlSink<BufWriter<File>>>()
            .map(JsonlSink::lines_written)
            .unwrap_or(0)
    };
    let m = driver.scenario.world.metrics();
    log_record(
        "trace_written",
        vec![
            ("path", Json::from(out.to_string())),
            (
                "format",
                Json::from(if binary { "binary" } else { "jsonl" }),
            ),
            ("seed", Json::from(seed)),
            ("rounds", Json::from(u64::from(rounds))),
            ("lines", Json::from(lines)),
            ("originated", Json::from(m.originated)),
            ("delivered", Json::from(m.unique_deliveries())),
        ],
    );
}

/// Translate between the two capture formats, direction chosen by the
/// input's sniffed format. bin→jsonl renders each decoded frame through
/// `TraceEvent::to_json`, producing bytes identical to a live
/// `JsonlSink` over the same events; jsonl→bin stamps `at = t, key = 0`
/// (JSONL carries no causal keys).
fn convert(input: &str, out: &str) {
    let to_jsonl = sniff_binary(input);
    let mut events = 0u64;
    if to_jsonl {
        let decoded = read_binary_events(input);
        let file = File::create(out).unwrap_or_else(|e| die(out, e.to_string()));
        let mut w = BufWriter::new(file);
        for ev in &decoded {
            writeln!(w, "{}", ev.to_json()).unwrap_or_else(|e| die(out, e.to_string()));
        }
        w.flush().unwrap_or_else(|e| die(out, e.to_string()));
        events = decoded.len() as u64;
    } else {
        let file = File::open(input).unwrap_or_else(|e| die(input, e.to_string()));
        let dst = File::create(out).unwrap_or_else(|e| die(out, e.to_string()));
        let mut w = BufWriter::new(dst);
        write_header(&mut w).unwrap_or_else(|e| die(out, e.to_string()));
        for (lineno, line) in BufReader::new(file).lines().enumerate() {
            let line = line.unwrap_or_else(|e| die(input, e.to_string()));
            if line.trim().is_empty() {
                continue;
            }
            let ev = TraceEvent::from_json_line(&line).unwrap_or_else(|e| {
                log_error(
                    "trace_parse_error",
                    vec![
                        ("path", Json::from(input.to_string())),
                        ("line", Json::from((lineno + 1) as u64)),
                        ("error", Json::from(e)),
                    ],
                );
                std::process::exit(1);
            });
            w.write_all(&encode_frame(&ev, ev.t(), 0))
                .unwrap_or_else(|e| die(out, e.to_string()));
            events += 1;
        }
        w.flush().unwrap_or_else(|e| die(out, e.to_string()));
    }
    log_record(
        "trace_converted",
        vec![
            ("input", Json::from(input.to_string())),
            ("output", Json::from(out.to_string())),
            (
                "direction",
                Json::from(if to_jsonl {
                    "bin_to_jsonl"
                } else {
                    "jsonl_to_bin"
                }),
            ),
            ("events", Json::from(events)),
        ],
    );
}

fn summary(path: &str) {
    let r = load(path);
    log_record(
        "trace_summary",
        vec![
            ("path", Json::from(path.to_string())),
            ("events", Json::from(r.len())),
        ],
    );
    for (ev, n) in r.counts() {
        log_record(
            "trace_count",
            vec![("ev", Json::from(ev)), ("count", Json::from(n))],
        );
    }
}

fn path_query(path: &str, origin: u64, msg_id: u64) {
    let r = load(path);
    let Some(p) = r.path_of(origin, msg_id) else {
        log_error(
            "trace_error",
            vec![
                ("message", Json::from("message not found in trace")),
                ("origin", Json::from(origin)),
                ("msg_id", Json::from(msg_id)),
            ],
        );
        std::process::exit(1);
    };
    for hop in &p.hops {
        log_record(
            "path_hop",
            vec![
                ("t", Json::from(hop.t)),
                ("node", Json::from(hop.node)),
                ("next", hop.next.map(Json::from).unwrap_or(Json::Null)),
                ("hops", Json::from(hop.hops)),
            ],
        );
    }
    match p.delivered {
        Some((t, dst, hops, latency_us)) => log_record(
            "path_delivered",
            vec![
                ("t", Json::from(t)),
                ("node", Json::from(dst)),
                ("hops", Json::from(hops)),
                ("latency_us", Json::from(latency_us)),
            ],
        ),
        None => log_record(
            "path_undelivered",
            vec![
                ("origin", Json::from(origin)),
                ("msg_id", Json::from(msg_id)),
            ],
        ),
    }
}

fn drop_query(path: &str, seq: u64) {
    let r = load(path);
    let drops = r.drops_of_seq(seq);
    log_record(
        "drop_summary",
        vec![("seq", Json::from(seq)), ("drops", Json::from(drops.len()))],
    );
    for (t, node, cause) in drops {
        log_record(
            "drop_event",
            vec![
                ("t", Json::from(t)),
                ("node", Json::from(node)),
                ("cause", Json::from(cause)),
            ],
        );
    }
}

fn energy_query(path: &str, node: u64) {
    let r = load(path);
    let timeline = r.energy_of(node);
    log_record(
        "energy_summary",
        vec![
            ("node", Json::from(node)),
            ("points", Json::from(timeline.len())),
        ],
    );
    for (t, j) in timeline {
        log_record(
            "energy_point",
            vec![
                ("t", Json::from(t)),
                ("node", Json::from(node)),
                ("consumed_j", Json::Num(j)),
            ],
        );
    }
}

/// Stream a recorded trace through the health monitor, event by event —
/// the offline twin of installing the monitor as the world's sink.
/// Accepts either capture format: the detector bank sees the same
/// event sequence whichever sink recorded it.
fn monitor_file(path: &str) -> HealthMonitor {
    if sniff_binary(path) {
        let mut monitor = HealthMonitor::with_config(HealthConfig::default());
        for ev in read_binary_events(path) {
            monitor.observe(&ev);
        }
        monitor.finalize();
        return monitor;
    }
    let file = File::open(path).unwrap_or_else(|e| die(path, e.to_string()));
    let mut monitor = HealthMonitor::with_config(HealthConfig::default());
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line.unwrap_or_else(|e| die(path, e.to_string()));
        if line.trim().is_empty() {
            continue;
        }
        let ev = TraceEvent::from_json_line(&line).unwrap_or_else(|e| {
            log_error(
                "trace_parse_error",
                vec![
                    ("path", Json::from(path.to_string())),
                    ("line", Json::from((lineno + 1) as u64)),
                    ("error", Json::from(e)),
                ],
            );
            std::process::exit(1);
        });
        monitor.observe(&ev);
    }
    monitor.finalize();
    monitor
}

fn health(path: &str) {
    let m = monitor_file(path);
    let net = m.net();
    log_record(
        "health_summary",
        vec![
            ("path", Json::from(path.to_string())),
            ("events", Json::from(net.events)),
            ("tx", Json::from(net.tx_total)),
            ("rx", Json::from(net.rx_total)),
            ("drops", Json::from(net.drops_total())),
            ("forwards", Json::from(net.forwards)),
            ("dup_forwards", Json::from(net.dup_forwards)),
            ("delivers", Json::from(net.delivers)),
            ("dup_delivers", Json::from(net.dup_delivers)),
            ("route_installs", Json::from(net.route_installs)),
            ("alerts", Json::from(m.alerts().len())),
        ],
    );
    for (&id, g) in m.gateways() {
        log_record(
            "health_gateway",
            vec![
                ("gateway", Json::from(id)),
                ("delivers", Json::from(g.delivers)),
                ("moves", Json::from(g.moves)),
                ("routes_installed", Json::from(g.routes_installed)),
                ("deliver_rate", Json::Num(g.deliver_rate.get())),
                ("silence_latched", Json::from(g.silence_latched)),
            ],
        );
    }
    for a in m.alerts() {
        println!("{}", a.to_json());
    }
}

fn alerts(path: &str) {
    let m = monitor_file(path);
    print!("{}", m.alerts_jsonl());
}

fn top(path: &str, k: usize) {
    let m = monitor_file(path);
    let mut order: Vec<(u64, usize)> = m
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, s)| (s.tx_total(), i))
        .filter(|&(tx, _)| tx > 0)
        .collect();
    // Busiest first; stable on ties by node id.
    order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in order.iter().take(k) {
        let s = &m.nodes()[i];
        log_record(
            "top_node",
            vec![
                ("node", Json::from(i as u64)),
                ("tx", Json::from(s.tx_total())),
                ("tx_control", Json::from(s.tx_control)),
                ("tx_data", Json::from(s.tx_data)),
                ("rx", Json::from(s.rx)),
                ("drops", Json::from(s.drops_total())),
                ("forwards", Json::from(s.forwards)),
                ("dup_forwards", Json::from(s.dup_forwards)),
                ("delivers", Json::from(s.delivers)),
                ("spontaneous_ctrl", Json::from(s.spontaneous_ctrl)),
            ],
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => {
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let binary = rest.iter().any(|s| s.as_str() == "--bin");
            rest.retain(|s| s.as_str() != "--bin");
            let Some(out) = rest.first() else { usage() };
            let seed = rest.get(1).map_or(11, |s| parse_u64(s, "seed"));
            let rounds = rest.get(2).map_or(1, |s| parse_u64(s, "rounds")) as u32;
            record(out, seed, rounds, binary);
        }
        Some("summary") => {
            let Some(path) = args.get(1) else { usage() };
            summary(path);
        }
        Some("path") => {
            let (Some(path), Some(o), Some(m)) = (args.get(1), args.get(2), args.get(3)) else {
                usage()
            };
            path_query(path, parse_u64(o, "origin"), parse_u64(m, "msg_id"));
        }
        Some("drop") => {
            let (Some(path), Some(s)) = (args.get(1), args.get(2)) else {
                usage()
            };
            drop_query(path, parse_u64(s, "seq"));
        }
        Some("energy") => {
            let (Some(path), Some(n)) = (args.get(1), args.get(2)) else {
                usage()
            };
            energy_query(path, parse_u64(n, "node"));
        }
        Some("health") => {
            let Some(path) = args.get(1) else { usage() };
            health(path);
        }
        Some("alerts") => {
            let Some(path) = args.get(1) else { usage() };
            alerts(path);
        }
        Some("top") => {
            let Some(path) = args.get(1) else { usage() };
            let k = args.get(2).map_or(10, |s| parse_u64(s, "k")) as usize;
            top(path, k);
        }
        Some("convert") => {
            let (Some(input), Some(out)) = (args.get(1), args.get(2)) else {
                usage()
            };
            convert(input, out);
        }
        _ => usage(),
    }
}
