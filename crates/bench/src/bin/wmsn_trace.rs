//! `wmsn-trace` — record and interrogate simulator trace files.
//!
//! Trace-driven debugging for the WMSN simulator: record a small
//! experiment with the JSONL sink installed, then replay the file to
//! answer "show the path of msg N", "why was packet X dropped", and
//! "what is node K's energy timeline".
//!
//! ```text
//! wmsn-trace record  <out.jsonl> [seed] [rounds]   # run E1 (SPR, 40 sensors) traced
//! wmsn-trace summary <trace.jsonl>                 # event counts; exits 1 on parse errors
//! wmsn-trace path    <trace.jsonl> <origin> <msg_id>
//! wmsn-trace drop    <trace.jsonl> <seq>
//! wmsn-trace energy  <trace.jsonl> <node>
//! wmsn-trace health  <trace.jsonl>                 # run the health monitor offline
//! wmsn-trace alerts  <trace.jsonl>                 # just the alert JSONL stream
//! wmsn-trace top     <trace.jsonl> [k]             # k busiest nodes by tx (default 10)
//! ```
//!
//! `health`/`alerts`/`top` replay the recorded trace through the same
//! `wmsn_health::HealthMonitor` the simulator installs online, so an
//! offline fingerprint matches the live one byte for byte.
//!
//! All output is structured records (one flat JSON object per line);
//! malformed traces and missing messages exit non-zero, which is what
//! the CI step relies on.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter};
use wmsn_core::builder::build_spr;
use wmsn_core::drivers::SprDriver;
use wmsn_core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn_health::{HealthConfig, HealthMonitor};
use wmsn_trace::{log_error, log_record, JsonlSink, Replay, TraceEvent};
use wmsn_util::json::Json;

fn usage() -> ! {
    println!(
        "usage: wmsn-trace record  <out.jsonl> [seed] [rounds]\n\
         \x20      wmsn-trace summary <trace.jsonl>\n\
         \x20      wmsn-trace path    <trace.jsonl> <origin> <msg_id>\n\
         \x20      wmsn-trace drop    <trace.jsonl> <seq>\n\
         \x20      wmsn-trace energy  <trace.jsonl> <node>\n\
         \x20      wmsn-trace health  <trace.jsonl>\n\
         \x20      wmsn-trace alerts  <trace.jsonl>\n\
         \x20      wmsn-trace top     <trace.jsonl> [k]"
    );
    std::process::exit(2);
}

fn parse_u64(s: &str, what: &'static str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        log_error(
            "trace_error",
            vec![
                ("expected", Json::from(what)),
                ("got", Json::from(s.to_string())),
            ],
        );
        std::process::exit(2);
    })
}

fn load(path: &str) -> Replay {
    let file = File::open(path).unwrap_or_else(|e| {
        log_error(
            "trace_error",
            vec![
                ("path", Json::from(path.to_string())),
                ("error", Json::from(e.to_string())),
            ],
        );
        std::process::exit(1);
    });
    Replay::from_reader(BufReader::new(file)).unwrap_or_else(|e| {
        log_error(
            "trace_parse_error",
            vec![
                ("path", Json::from(path.to_string())),
                ("error", Json::from(e)),
            ],
        );
        std::process::exit(1);
    })
}

/// Run the E1 kernel (SPR over 40 uniformly deployed sensors, three
/// gateways) with a JSONL file sink installed, for `rounds` rounds.
fn record(out: &str, seed: u64, rounds: u32) {
    let file = File::create(out).unwrap_or_else(|e| {
        log_error(
            "trace_error",
            vec![
                ("path", Json::from(out.to_string())),
                ("error", Json::from(e.to_string())),
            ],
        );
        std::process::exit(1);
    });
    let field = FieldParams::default_uniform(40, seed);
    let scen = build_spr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
    );
    let mut driver = SprDriver::new(scen);
    driver
        .scenario
        .world
        .set_trace_sink(Box::new(JsonlSink::new(BufWriter::new(file))));
    for _ in 0..rounds {
        driver.run_round();
    }
    let sink = driver
        .scenario
        .world
        .take_trace_sink()
        .expect("sink was installed");
    let lines = sink
        .as_any()
        .downcast_ref::<JsonlSink<BufWriter<File>>>()
        .map(JsonlSink::lines_written)
        .unwrap_or(0);
    let m = driver.scenario.world.metrics();
    log_record(
        "trace_written",
        vec![
            ("path", Json::from(out.to_string())),
            ("seed", Json::from(seed)),
            ("rounds", Json::from(u64::from(rounds))),
            ("lines", Json::from(lines)),
            ("originated", Json::from(m.originated)),
            ("delivered", Json::from(m.unique_deliveries())),
        ],
    );
}

fn summary(path: &str) {
    let r = load(path);
    log_record(
        "trace_summary",
        vec![
            ("path", Json::from(path.to_string())),
            ("events", Json::from(r.len())),
        ],
    );
    for (ev, n) in r.counts() {
        log_record(
            "trace_count",
            vec![("ev", Json::from(ev)), ("count", Json::from(n))],
        );
    }
}

fn path_query(path: &str, origin: u64, msg_id: u64) {
    let r = load(path);
    let Some(p) = r.path_of(origin, msg_id) else {
        log_error(
            "trace_error",
            vec![
                ("message", Json::from("message not found in trace")),
                ("origin", Json::from(origin)),
                ("msg_id", Json::from(msg_id)),
            ],
        );
        std::process::exit(1);
    };
    for hop in &p.hops {
        log_record(
            "path_hop",
            vec![
                ("t", Json::from(hop.t)),
                ("node", Json::from(hop.node)),
                ("next", hop.next.map(Json::from).unwrap_or(Json::Null)),
                ("hops", Json::from(hop.hops)),
            ],
        );
    }
    match p.delivered {
        Some((t, dst, hops, latency_us)) => log_record(
            "path_delivered",
            vec![
                ("t", Json::from(t)),
                ("node", Json::from(dst)),
                ("hops", Json::from(hops)),
                ("latency_us", Json::from(latency_us)),
            ],
        ),
        None => log_record(
            "path_undelivered",
            vec![
                ("origin", Json::from(origin)),
                ("msg_id", Json::from(msg_id)),
            ],
        ),
    }
}

fn drop_query(path: &str, seq: u64) {
    let r = load(path);
    let drops = r.drops_of_seq(seq);
    log_record(
        "drop_summary",
        vec![("seq", Json::from(seq)), ("drops", Json::from(drops.len()))],
    );
    for (t, node, cause) in drops {
        log_record(
            "drop_event",
            vec![
                ("t", Json::from(t)),
                ("node", Json::from(node)),
                ("cause", Json::from(cause)),
            ],
        );
    }
}

fn energy_query(path: &str, node: u64) {
    let r = load(path);
    let timeline = r.energy_of(node);
    log_record(
        "energy_summary",
        vec![
            ("node", Json::from(node)),
            ("points", Json::from(timeline.len())),
        ],
    );
    for (t, j) in timeline {
        log_record(
            "energy_point",
            vec![
                ("t", Json::from(t)),
                ("node", Json::from(node)),
                ("consumed_j", Json::Num(j)),
            ],
        );
    }
}

/// Stream a recorded trace through the health monitor, line by line —
/// the offline twin of installing the monitor as the world's sink.
fn monitor_file(path: &str) -> HealthMonitor {
    let file = File::open(path).unwrap_or_else(|e| {
        log_error(
            "trace_error",
            vec![
                ("path", Json::from(path.to_string())),
                ("error", Json::from(e.to_string())),
            ],
        );
        std::process::exit(1);
    });
    let mut monitor = HealthMonitor::with_config(HealthConfig::default());
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line.unwrap_or_else(|e| {
            log_error(
                "trace_error",
                vec![
                    ("path", Json::from(path.to_string())),
                    ("error", Json::from(e.to_string())),
                ],
            );
            std::process::exit(1);
        });
        if line.trim().is_empty() {
            continue;
        }
        let ev = TraceEvent::from_json_line(&line).unwrap_or_else(|e| {
            log_error(
                "trace_parse_error",
                vec![
                    ("path", Json::from(path.to_string())),
                    ("line", Json::from((lineno + 1) as u64)),
                    ("error", Json::from(e)),
                ],
            );
            std::process::exit(1);
        });
        monitor.observe(&ev);
    }
    monitor.finalize();
    monitor
}

fn health(path: &str) {
    let m = monitor_file(path);
    let net = m.net();
    log_record(
        "health_summary",
        vec![
            ("path", Json::from(path.to_string())),
            ("events", Json::from(net.events)),
            ("tx", Json::from(net.tx_total)),
            ("rx", Json::from(net.rx_total)),
            ("drops", Json::from(net.drops_total())),
            ("forwards", Json::from(net.forwards)),
            ("dup_forwards", Json::from(net.dup_forwards)),
            ("delivers", Json::from(net.delivers)),
            ("dup_delivers", Json::from(net.dup_delivers)),
            ("route_installs", Json::from(net.route_installs)),
            ("alerts", Json::from(m.alerts().len())),
        ],
    );
    for (&id, g) in m.gateways() {
        log_record(
            "health_gateway",
            vec![
                ("gateway", Json::from(id)),
                ("delivers", Json::from(g.delivers)),
                ("moves", Json::from(g.moves)),
                ("routes_installed", Json::from(g.routes_installed)),
                ("deliver_rate", Json::Num(g.deliver_rate.get())),
                ("silence_latched", Json::from(g.silence_latched)),
            ],
        );
    }
    for a in m.alerts() {
        println!("{}", a.to_json());
    }
}

fn alerts(path: &str) {
    let m = monitor_file(path);
    print!("{}", m.alerts_jsonl());
}

fn top(path: &str, k: usize) {
    let m = monitor_file(path);
    let mut order: Vec<(u64, usize)> = m
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, s)| (s.tx_total(), i))
        .filter(|&(tx, _)| tx > 0)
        .collect();
    // Busiest first; stable on ties by node id.
    order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in order.iter().take(k) {
        let s = &m.nodes()[i];
        log_record(
            "top_node",
            vec![
                ("node", Json::from(i as u64)),
                ("tx", Json::from(s.tx_total())),
                ("tx_control", Json::from(s.tx_control)),
                ("tx_data", Json::from(s.tx_data)),
                ("rx", Json::from(s.rx)),
                ("drops", Json::from(s.drops_total())),
                ("forwards", Json::from(s.forwards)),
                ("dup_forwards", Json::from(s.dup_forwards)),
                ("delivers", Json::from(s.delivers)),
                ("spontaneous_ctrl", Json::from(s.spontaneous_ctrl)),
            ],
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => {
            let Some(out) = args.get(1) else { usage() };
            let seed = args.get(2).map_or(11, |s| parse_u64(s, "seed"));
            let rounds = args.get(3).map_or(1, |s| parse_u64(s, "rounds")) as u32;
            record(out, seed, rounds);
        }
        Some("summary") => {
            let Some(path) = args.get(1) else { usage() };
            summary(path);
        }
        Some("path") => {
            let (Some(path), Some(o), Some(m)) = (args.get(1), args.get(2), args.get(3)) else {
                usage()
            };
            path_query(path, parse_u64(o, "origin"), parse_u64(m, "msg_id"));
        }
        Some("drop") => {
            let (Some(path), Some(s)) = (args.get(1), args.get(2)) else {
                usage()
            };
            drop_query(path, parse_u64(s, "seq"));
        }
        Some("energy") => {
            let (Some(path), Some(n)) = (args.get(1), args.get(2)) else {
                usage()
            };
            energy_query(path, parse_u64(n, "node"));
        }
        Some("health") => {
            let Some(path) = args.get(1) else { usage() };
            health(path);
        }
        Some("alerts") => {
            let Some(path) = args.get(1) else { usage() };
            alerts(path);
        }
        Some("top") => {
            let Some(path) = args.get(1) else { usage() };
            let k = args.get(2).map_or(10, |s| parse_u64(s, "k")) as usize;
            top(path, k);
        }
        _ => usage(),
    }
}
