//! `wmsn-trace` — record and interrogate simulator trace files.
//!
//! Trace-driven debugging for the WMSN simulator: record a small
//! experiment with the JSONL sink installed, then replay the file to
//! answer "show the path of msg N", "why was packet X dropped", and
//! "what is node K's energy timeline".
//!
//! ```text
//! wmsn-trace record  <out.jsonl> [seed] [rounds]   # run E1 (SPR, 40 sensors) traced
//! wmsn-trace summary <trace.jsonl>                 # event counts; exits 1 on parse errors
//! wmsn-trace path    <trace.jsonl> <origin> <msg_id>
//! wmsn-trace drop    <trace.jsonl> <seq>
//! wmsn-trace energy  <trace.jsonl> <node>
//! ```
//!
//! All output is structured records (one flat JSON object per line);
//! malformed traces and missing messages exit non-zero, which is what
//! the CI step relies on.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use wmsn_core::builder::build_spr;
use wmsn_core::drivers::SprDriver;
use wmsn_core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn_trace::{log_error, log_record, JsonlSink, Replay};
use wmsn_util::json::Json;

fn usage() -> ! {
    println!(
        "usage: wmsn-trace record  <out.jsonl> [seed] [rounds]\n\
         \x20      wmsn-trace summary <trace.jsonl>\n\
         \x20      wmsn-trace path    <trace.jsonl> <origin> <msg_id>\n\
         \x20      wmsn-trace drop    <trace.jsonl> <seq>\n\
         \x20      wmsn-trace energy  <trace.jsonl> <node>"
    );
    std::process::exit(2);
}

fn parse_u64(s: &str, what: &'static str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        log_error(
            "trace_error",
            vec![
                ("expected", Json::from(what)),
                ("got", Json::from(s.to_string())),
            ],
        );
        std::process::exit(2);
    })
}

fn load(path: &str) -> Replay {
    let file = File::open(path).unwrap_or_else(|e| {
        log_error(
            "trace_error",
            vec![
                ("path", Json::from(path.to_string())),
                ("error", Json::from(e.to_string())),
            ],
        );
        std::process::exit(1);
    });
    Replay::from_reader(BufReader::new(file)).unwrap_or_else(|e| {
        log_error(
            "trace_parse_error",
            vec![
                ("path", Json::from(path.to_string())),
                ("error", Json::from(e)),
            ],
        );
        std::process::exit(1);
    })
}

/// Run the E1 kernel (SPR over 40 uniformly deployed sensors, three
/// gateways) with a JSONL file sink installed, for `rounds` rounds.
fn record(out: &str, seed: u64, rounds: u32) {
    let file = File::create(out).unwrap_or_else(|e| {
        log_error(
            "trace_error",
            vec![
                ("path", Json::from(out.to_string())),
                ("error", Json::from(e.to_string())),
            ],
        );
        std::process::exit(1);
    });
    let field = FieldParams::default_uniform(40, seed);
    let scen = build_spr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
    );
    let mut driver = SprDriver::new(scen);
    driver
        .scenario
        .world
        .set_trace_sink(Box::new(JsonlSink::new(BufWriter::new(file))));
    for _ in 0..rounds {
        driver.run_round();
    }
    let sink = driver
        .scenario
        .world
        .take_trace_sink()
        .expect("sink was installed");
    let lines = sink
        .as_any()
        .downcast_ref::<JsonlSink<BufWriter<File>>>()
        .map(JsonlSink::lines_written)
        .unwrap_or(0);
    let m = driver.scenario.world.metrics();
    log_record(
        "trace_written",
        vec![
            ("path", Json::from(out.to_string())),
            ("seed", Json::from(seed)),
            ("rounds", Json::from(u64::from(rounds))),
            ("lines", Json::from(lines)),
            ("originated", Json::from(m.originated)),
            ("delivered", Json::from(m.unique_deliveries())),
        ],
    );
}

fn summary(path: &str) {
    let r = load(path);
    log_record(
        "trace_summary",
        vec![
            ("path", Json::from(path.to_string())),
            ("events", Json::from(r.len())),
        ],
    );
    for (ev, n) in r.counts() {
        log_record(
            "trace_count",
            vec![("ev", Json::from(ev)), ("count", Json::from(n))],
        );
    }
}

fn path_query(path: &str, origin: u64, msg_id: u64) {
    let r = load(path);
    let Some(p) = r.path_of(origin, msg_id) else {
        log_error(
            "trace_error",
            vec![
                ("message", Json::from("message not found in trace")),
                ("origin", Json::from(origin)),
                ("msg_id", Json::from(msg_id)),
            ],
        );
        std::process::exit(1);
    };
    for hop in &p.hops {
        log_record(
            "path_hop",
            vec![
                ("t", Json::from(hop.t)),
                ("node", Json::from(hop.node)),
                ("next", hop.next.map(Json::from).unwrap_or(Json::Null)),
                ("hops", Json::from(hop.hops)),
            ],
        );
    }
    match p.delivered {
        Some((t, dst, hops, latency_us)) => log_record(
            "path_delivered",
            vec![
                ("t", Json::from(t)),
                ("node", Json::from(dst)),
                ("hops", Json::from(hops)),
                ("latency_us", Json::from(latency_us)),
            ],
        ),
        None => log_record(
            "path_undelivered",
            vec![
                ("origin", Json::from(origin)),
                ("msg_id", Json::from(msg_id)),
            ],
        ),
    }
}

fn drop_query(path: &str, seq: u64) {
    let r = load(path);
    let drops = r.drops_of_seq(seq);
    log_record(
        "drop_summary",
        vec![("seq", Json::from(seq)), ("drops", Json::from(drops.len()))],
    );
    for (t, node, cause) in drops {
        log_record(
            "drop_event",
            vec![
                ("t", Json::from(t)),
                ("node", Json::from(node)),
                ("cause", Json::from(cause)),
            ],
        );
    }
}

fn energy_query(path: &str, node: u64) {
    let r = load(path);
    let timeline = r.energy_of(node);
    log_record(
        "energy_summary",
        vec![
            ("node", Json::from(node)),
            ("points", Json::from(timeline.len())),
        ],
    );
    for (t, j) in timeline {
        log_record(
            "energy_point",
            vec![
                ("t", Json::from(t)),
                ("node", Json::from(node)),
                ("consumed_j", Json::Num(j)),
            ],
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => {
            let Some(out) = args.get(1) else { usage() };
            let seed = args.get(2).map_or(11, |s| parse_u64(s, "seed"));
            let rounds = args.get(3).map_or(1, |s| parse_u64(s, "rounds")) as u32;
            record(out, seed, rounds);
        }
        Some("summary") => {
            let Some(path) = args.get(1) else { usage() };
            summary(path);
        }
        Some("path") => {
            let (Some(path), Some(o), Some(m)) = (args.get(1), args.get(2), args.get(3)) else {
                usage()
            };
            path_query(path, parse_u64(o, "origin"), parse_u64(m, "msg_id"));
        }
        Some("drop") => {
            let (Some(path), Some(s)) = (args.get(1), args.get(2)) else {
                usage()
            };
            drop_query(path, parse_u64(s, "seq"));
        }
        Some("energy") => {
            let (Some(path), Some(n)) = (args.get(1), args.get(2)) else {
                usage()
            };
            energy_query(path, parse_u64(n, "node"));
        }
        _ => usage(),
    }
}
