//! `wmsn-trace` — record and interrogate simulator trace files.
//!
//! Trace-driven debugging for the WMSN simulator: record a small
//! experiment with a file sink installed, then replay the capture to
//! answer "show the path of msg N", "why was packet X dropped", and
//! "what is node K's energy timeline".
//!
//! ```text
//! wmsn-trace record  <out> [seed] [rounds] [--bin|--seg]  # run E1 (SPR, 40 sensors) traced
//! wmsn-trace summary <trace>                        # event counts; exits 1 on parse errors
//! wmsn-trace path    <trace> <origin> <msg_id>
//! wmsn-trace drop    <trace> <seq>
//! wmsn-trace energy  <trace> <node>
//! wmsn-trace health  <trace>                        # run the health monitor offline
//! wmsn-trace health  <capture> --window <lo..hi> [--full-scan]  # windowed detector replay
//! wmsn-trace explain <capture> <alert#|json> [--span W] [--full-scan]  # alert provenance
//! wmsn-trace compact <in> <out> [--keep-last N] [--keep-alert-windows W]
//! wmsn-trace record-e18 <out> [seed]                # checkpointed gateway-death capture
//! wmsn-trace alerts  <trace>                        # just the alert JSONL stream
//! wmsn-trace top     <trace> [k]                    # k busiest nodes by tx (default 10)
//! wmsn-trace index   <capture>                      # segment directory of a segmented capture
//! wmsn-trace pack    <in> <out> [segment_frames]    # jsonl/flat-bin → segmented capture
//! wmsn-trace convert <in> <out>                     # bin/segmented→jsonl or jsonl→bin
//! ```
//!
//! `health --window` and `explain` resume the detector bank from the
//! nearest embedded checkpoint (segmented captures recorded through
//! `wmsn_health::ForensicCaptureSink`, e.g. by `record-e18`) and replay
//! only the segments the window touches. Their stdout is byte-identical
//! to a `--full-scan` genesis replay — CI `cmp`-gates both — while the
//! replay statistics (checkpoint used, segments read) go to stderr.
//! `compact` applies a retention policy: old segments outside the kept
//! window collapse to their directory summaries (index-exact, but
//! frame reads into them fail loudly) with checkpoints re-embedded so
//! windowed queries over retained ranges keep working.
//!
//! Every query accepts **any of the three formats**: the input is
//! sniffed by its first bytes (flat binary captures open with the
//! `WMSNTRB` magic, segmented captures with `WMSNTRS`, JSONL with `{`).
//! JSONL and flat binary replay through the in-memory [`Replay`];
//! segmented captures answer through the streaming scan layer in
//! `wmsn_trace::capture` — segment-at-a-time decode with index-driven
//! segment skipping, so a query over a multi-gigabyte capture holds one
//! segment in memory. Both paths print identical records byte for byte
//! (pinned in CI by the streaming-vs-in-memory parity step).
//!
//! A segmented capture whose trailer records `frames_dropped > 0` was
//! recorded through a ring under `DropNewest` backpressure — the file
//! is a *sample* of the trace stream, not a transcript — so every
//! command that opens one prints a `capture_dropped_frames` warning on
//! stderr first.
//!
//! `health`/`alerts`/`top` stream the recorded trace through the same
//! `wmsn_health::HealthMonitor` the simulator installs online, so an
//! offline fingerprint matches the live one byte for byte.
//!
//! All output is structured records (one flat JSON object per line).
//! Malformed traces and missing messages exit non-zero through one
//! helper (`die_load`) that always reports the path plus the JSONL line
//! or byte offset of the failure — which is what the CI step relies on.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use wmsn_core::builder::build_spr;
use wmsn_core::drivers::SprDriver;
use wmsn_core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn_health::{
    alerts_in_window, compact_capture, explain_alert, replay_window, CompactionPolicy, HealthAlert,
    HealthConfig, HealthMonitor, WindowReplayStats,
};
use wmsn_trace::frame::write_header;
use wmsn_trace::replay::MessagePath;
use wmsn_trace::{
    capture_counts, capture_drops_of_seq, capture_energy_of, capture_path_of, encode_frame,
    is_binary_capture, is_segmented_capture, log_error, log_record, tag_name, BinarySink,
    BinaryTraceReader, CaptureConfig, CaptureReader, CaptureSink, JsonlSink, Replay, ScanFilter,
    TraceEvent, TraceSink, DEFAULT_SEGMENT_FRAMES, TAG_COUNT,
};
use wmsn_util::json::Json;

fn usage() -> ! {
    println!(
        "usage: wmsn-trace record  <out> [seed] [rounds] [--bin|--seg]\n\
         \x20      wmsn-trace summary <trace>\n\
         \x20      wmsn-trace path    <trace> <origin> <msg_id>\n\
         \x20      wmsn-trace drop    <trace> <seq>\n\
         \x20      wmsn-trace energy  <trace> <node>\n\
         \x20      wmsn-trace health  <trace>\n\
         \x20      wmsn-trace health  <capture> --window <lo..hi> [--full-scan]\n\
         \x20      wmsn-trace explain <capture> <alert#|json-line> [--span W] [--full-scan]\n\
         \x20      wmsn-trace compact <in> <out> [--keep-last N] [--keep-alert-windows W]\n\
         \x20      wmsn-trace record-e18 <out> [seed]\n\
         \x20      wmsn-trace alerts  <trace>\n\
         \x20      wmsn-trace top     <trace> [k]\n\
         \x20      wmsn-trace index   <capture>\n\
         \x20      wmsn-trace pack    <in> <out> [segment_frames]\n\
         \x20      wmsn-trace convert <in> <out>\n\
         (<trace> may be JSONL, a flat binary capture or a segmented\n\
         \x20capture; the format is sniffed)"
    );
    std::process::exit(2);
}

/// The one load/IO-error exit path: every failure to open, read, parse
/// or write a trace reports the same record shape — path, the JSONL
/// `line` or byte `offset` of the failure when known, and the error —
/// then exits 1.
fn die_load(path: &str, line: Option<u64>, offset: Option<u64>, error: String) -> ! {
    let mut fields = vec![("path", Json::from(path.to_string()))];
    if let Some(l) = line {
        fields.push(("line", Json::from(l)));
    }
    if let Some(o) = offset {
        fields.push(("offset", Json::from(o)));
    }
    fields.push(("error", Json::from(error)));
    log_error("trace_load_error", fields);
    std::process::exit(1);
}

/// Trace file formats the CLI understands, sniffed from the first
/// bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Format {
    Jsonl,
    Binary,
    Segmented,
}

fn sniff(path: &str) -> Format {
    let mut head = [0u8; 8];
    let Ok(mut f) = File::open(path) else {
        return Format::Jsonl; // let the real open report the error
    };
    let n = f.read(&mut head).unwrap_or(0);
    if is_segmented_capture(&head[..n]) {
        Format::Segmented
    } else if is_binary_capture(&head[..n]) {
        Format::Binary
    } else {
        Format::Jsonl
    }
}

/// Open a segmented capture, validating footer and directory. If the
/// trailer records ring drops, warn on stderr before any query output:
/// the capture is a partial sample and must never be silently trusted.
fn open_capture(path: &str) -> CaptureReader<BufReader<File>> {
    let r = CaptureReader::open(path).unwrap_or_else(|e| die_load(path, None, None, e));
    if r.frames_dropped() > 0 {
        log_error(
            "capture_dropped_frames",
            vec![
                ("path", Json::from(path.to_string())),
                ("frames_dropped", Json::from(r.frames_dropped())),
                ("frames", Json::from(r.frames())),
                (
                    "warning",
                    Json::from(
                        "capture was recorded with ring backpressure drops; \
                         query answers reflect a partial trace",
                    ),
                ),
            ],
        );
    }
    r
}

/// Stream the frames of a flat binary capture, reporting the byte
/// offset of any corrupt frame.
fn for_each_binary_event(path: &str, mut f: impl FnMut(TraceEvent, u64, u64)) {
    let file = File::open(path).unwrap_or_else(|e| die_load(path, None, None, e.to_string()));
    let mut r = BinaryTraceReader::new(BufReader::new(file))
        .unwrap_or_else(|e| die_load(path, None, Some(0), e));
    loop {
        match r.next_frame() {
            Ok(Some((ev, at, key))) => f(ev, at, key),
            Ok(None) => return,
            Err(e) => die_load(path, None, Some(r.byte_offset()), e),
        }
    }
}

/// Stream the events of a JSONL trace, reporting the 1-based line
/// number of any malformed line.
fn for_each_jsonl_event(path: &str, mut f: impl FnMut(TraceEvent)) {
    let file = File::open(path).unwrap_or_else(|e| die_load(path, None, None, e.to_string()));
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line =
            line.unwrap_or_else(|e| die_load(path, Some(lineno as u64 + 1), None, e.to_string()));
        if line.trim().is_empty() {
            continue;
        }
        let ev = TraceEvent::from_json_line(&line)
            .unwrap_or_else(|e| die_load(path, Some(lineno as u64 + 1), None, e));
        f(ev);
    }
}

fn parse_u64(s: &str, what: &'static str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        log_error(
            "trace_error",
            vec![
                ("expected", Json::from(what)),
                ("got", Json::from(s.to_string())),
            ],
        );
        std::process::exit(2);
    })
}

/// Load a JSONL or flat-binary trace fully into the in-memory replay
/// engine. Segmented captures never come through here — their queries
/// stream (see the module docs).
fn load(path: &str) -> Replay {
    let mut events = Vec::new();
    match sniff(path) {
        Format::Binary => for_each_binary_event(path, |ev, _, _| events.push(ev)),
        _ => for_each_jsonl_event(path, |ev| events.push(ev)),
    }
    Replay::from_events(&events)
}

/// Run the E1 kernel (SPR over 40 uniformly deployed sensors, three
/// gateways) with a file sink installed, for `rounds` rounds. `format`
/// selects JSONL, the flat fixed-frame binary sink, or the segmented
/// capture sink.
fn record(out: &str, seed: u64, rounds: u32, format: Format) {
    let field = FieldParams::default_uniform(40, seed);
    let scen = build_spr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
    );
    let mut driver = SprDriver::new(scen);
    let sink: Box<dyn TraceSink> = match format {
        Format::Jsonl => {
            let file =
                File::create(out).unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
            Box::new(JsonlSink::new(BufWriter::new(file)))
        }
        Format::Binary => {
            let file =
                File::create(out).unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
            Box::new(BinarySink::new(BufWriter::new(file)))
        }
        Format::Segmented => Box::new(
            CaptureSink::create(out, CaptureConfig::default())
                .unwrap_or_else(|e| die_load(out, None, None, e.to_string())),
        ),
    };
    driver.scenario.world.set_trace_sink(sink);
    for _ in 0..rounds {
        driver.run_round();
    }
    let mut sink = driver
        .scenario
        .world
        .take_trace_sink()
        .expect("sink was installed");
    let lines = match format {
        Format::Jsonl => sink
            .as_any()
            .downcast_ref::<JsonlSink<BufWriter<File>>>()
            .map(JsonlSink::lines_written)
            .unwrap_or(0),
        Format::Binary => sink
            .as_any()
            .downcast_ref::<BinarySink<BufWriter<File>>>()
            .map(BinarySink::frames_written)
            .unwrap_or(0),
        Format::Segmented => {
            let cap = sink
                .as_any_mut()
                .downcast_mut::<CaptureSink>()
                .and_then(CaptureSink::finalize)
                .unwrap_or_else(|| die_load(out, None, None, "capture write failed".into()));
            cap.frames
        }
    };
    let m = driver.scenario.world.metrics();
    log_record(
        "trace_written",
        vec![
            ("path", Json::from(out.to_string())),
            (
                "format",
                Json::from(match format {
                    Format::Jsonl => "jsonl",
                    Format::Binary => "binary",
                    Format::Segmented => "segmented",
                }),
            ),
            ("seed", Json::from(seed)),
            ("rounds", Json::from(u64::from(rounds))),
            ("lines", Json::from(lines)),
            ("originated", Json::from(m.originated)),
            ("delivered", Json::from(m.unique_deliveries())),
        ],
    );
}

/// Repack a JSONL or flat-binary trace into a segmented capture. Flat
/// binary frames keep their causal `(at, key)` stamps; JSONL carries no
/// causal keys, so events are stamped `at = t, key = 0` (exactly as
/// `convert` does in the jsonl→bin direction).
fn pack(input: &str, out: &str, segment_frames: usize) {
    let file = File::create(out).unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
    let mut w =
        wmsn_trace::CaptureWriter::new(BufWriter::new(file), CaptureConfig { segment_frames })
            .unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
    match sniff(input) {
        Format::Segmented => die_load(
            input,
            None,
            None,
            "input is already a segmented capture".into(),
        ),
        Format::Binary => for_each_binary_event(input, |ev, at, key| {
            w.push(&ev, at, key)
                .unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
        }),
        Format::Jsonl => for_each_jsonl_event(input, |ev| {
            w.push(&ev, ev.t(), 0)
                .unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
        }),
    }
    let (_, stats) = w
        .finish()
        .unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
    log_record(
        "trace_packed",
        vec![
            ("input", Json::from(input.to_string())),
            ("output", Json::from(out.to_string())),
            ("frames", Json::from(stats.frames)),
            ("segments", Json::from(stats.segments)),
            ("segment_frames", Json::from(segment_frames)),
            ("bytes", Json::from(stats.bytes)),
        ],
    );
}

/// Print the segment directory of a segmented capture: one record per
/// segment with its byte offset, frame count, `at` range and per-kind
/// counts — the index the streaming queries prune with.
fn index(path: &str) {
    let r = open_capture(path);
    log_record(
        "capture_index",
        vec![
            ("path", Json::from(path.to_string())),
            ("frames", Json::from(r.frames())),
            ("segments", Json::from(r.segments().len())),
            ("bytes", Json::from(r.bytes())),
            ("frames_dropped", Json::from(r.frames_dropped())),
        ],
    );
    for (i, seg) in r.segments().iter().enumerate() {
        let mut kinds = Vec::new();
        for t in 1..=TAG_COUNT as u8 {
            let n = seg.count_of_tag(t);
            if n > 0 {
                kinds.push((tag_name(t).expect("tag in range"), Json::from(n)));
            }
        }
        log_record(
            "capture_segment",
            vec![
                ("segment", Json::from(i)),
                ("offset", Json::from(seg.offset)),
                ("frames", Json::from(u64::from(seg.frames))),
                ("at_min", Json::from(seg.at_min)),
                ("at_max", Json::from(seg.at_max)),
                ("counts", Json::obj(kinds)),
            ],
        );
    }
}

/// Translate between capture formats, direction chosen by the input's
/// sniffed format. bin→jsonl and segmented→jsonl render each decoded
/// frame through `TraceEvent::to_json`, producing bytes identical to a
/// live `JsonlSink` over the same events; jsonl→bin stamps `at = t,
/// key = 0` (JSONL carries no causal keys).
fn convert(input: &str, out: &str) {
    let from = sniff(input);
    let mut events = 0u64;
    match from {
        Format::Binary | Format::Segmented => {
            let file =
                File::create(out).unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
            let mut w = BufWriter::new(file);
            let mut emit = |ev: &TraceEvent| {
                writeln!(w, "{}", ev.to_json())
                    .unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
                events += 1;
            };
            match from {
                Format::Binary => for_each_binary_event(input, |ev, _, _| emit(&ev)),
                _ => {
                    let mut r = open_capture(input);
                    r.scan(&ScanFilter::all(), |ev, _, _| emit(ev))
                        .unwrap_or_else(|e| die_load(input, None, None, e));
                }
            }
            w.flush()
                .unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
        }
        Format::Jsonl => {
            let dst =
                File::create(out).unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
            let mut w = BufWriter::new(dst);
            write_header(&mut w).unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
            for_each_jsonl_event(input, |ev| {
                w.write_all(&encode_frame(&ev, ev.t(), 0))
                    .unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
                events += 1;
            });
            w.flush()
                .unwrap_or_else(|e| die_load(out, None, None, e.to_string()));
        }
    }
    log_record(
        "trace_converted",
        vec![
            ("input", Json::from(input.to_string())),
            ("output", Json::from(out.to_string())),
            (
                "direction",
                Json::from(match from {
                    Format::Binary => "bin_to_jsonl",
                    Format::Segmented => "segmented_to_jsonl",
                    Format::Jsonl => "jsonl_to_bin",
                }),
            ),
            ("events", Json::from(events)),
        ],
    );
}

// Query printing is shared between the in-memory `Replay` path and the
// streaming capture path so the two are byte-identical by construction
// (and verified byte-for-byte by the CI parity step).

fn print_summary(path: &str, events: u64, counts: BTreeMap<String, u64>) {
    log_record(
        "trace_summary",
        vec![
            ("path", Json::from(path.to_string())),
            ("events", Json::from(events)),
        ],
    );
    for (ev, n) in counts {
        log_record(
            "trace_count",
            vec![("ev", Json::from(ev)), ("count", Json::from(n))],
        );
    }
}

fn summary(path: &str) {
    match sniff(path) {
        Format::Segmented => {
            let r = open_capture(path);
            print_summary(path, r.frames(), capture_counts(&r));
        }
        _ => {
            let r = load(path);
            print_summary(path, r.len() as u64, r.counts());
        }
    }
}

fn print_path(origin: u64, msg_id: u64, found: Option<MessagePath>) {
    let Some(p) = found else {
        log_error(
            "trace_error",
            vec![
                ("message", Json::from("message not found in trace")),
                ("origin", Json::from(origin)),
                ("msg_id", Json::from(msg_id)),
            ],
        );
        std::process::exit(1);
    };
    for hop in &p.hops {
        log_record(
            "path_hop",
            vec![
                ("t", Json::from(hop.t)),
                ("node", Json::from(hop.node)),
                ("next", hop.next.map(Json::from).unwrap_or(Json::Null)),
                ("hops", Json::from(hop.hops)),
            ],
        );
    }
    match p.delivered {
        Some((t, dst, hops, latency_us)) => log_record(
            "path_delivered",
            vec![
                ("t", Json::from(t)),
                ("node", Json::from(dst)),
                ("hops", Json::from(hops)),
                ("latency_us", Json::from(latency_us)),
            ],
        ),
        None => log_record(
            "path_undelivered",
            vec![
                ("origin", Json::from(origin)),
                ("msg_id", Json::from(msg_id)),
            ],
        ),
    }
}

fn path_query(path: &str, origin: u64, msg_id: u64) {
    let found = match sniff(path) {
        Format::Segmented => {
            let mut r = open_capture(path);
            capture_path_of(&mut r, origin, msg_id)
                .unwrap_or_else(|e| die_load(path, None, None, e))
        }
        _ => load(path).path_of(origin, msg_id),
    };
    print_path(origin, msg_id, found);
}

fn drop_query(path: &str, seq: u64) {
    let drops = match sniff(path) {
        Format::Segmented => {
            let mut r = open_capture(path);
            capture_drops_of_seq(&mut r, seq).unwrap_or_else(|e| die_load(path, None, None, e))
        }
        _ => load(path).drops_of_seq(seq),
    };
    log_record(
        "drop_summary",
        vec![("seq", Json::from(seq)), ("drops", Json::from(drops.len()))],
    );
    for (t, node, cause) in drops {
        log_record(
            "drop_event",
            vec![
                ("t", Json::from(t)),
                ("node", Json::from(node)),
                ("cause", Json::from(cause)),
            ],
        );
    }
}

fn energy_query(path: &str, node: u64) {
    let timeline = match sniff(path) {
        Format::Segmented => {
            let mut r = open_capture(path);
            capture_energy_of(&mut r, node).unwrap_or_else(|e| die_load(path, None, None, e))
        }
        _ => load(path).energy_of(node),
    };
    log_record(
        "energy_summary",
        vec![
            ("node", Json::from(node)),
            ("points", Json::from(timeline.len())),
        ],
    );
    for (t, j) in timeline {
        log_record(
            "energy_point",
            vec![
                ("t", Json::from(t)),
                ("node", Json::from(node)),
                ("consumed_j", Json::Num(j)),
            ],
        );
    }
}

/// Stream a recorded trace through the health monitor, event by event —
/// the offline twin of installing the monitor as the world's sink.
/// Accepts all three capture formats; the detector bank sees the same
/// event sequence whichever sink recorded it, and no format ever
/// materialises the full event list (segmented captures stream one
/// segment at a time).
fn monitor_file(path: &str) -> HealthMonitor {
    let mut monitor = HealthMonitor::with_config(HealthConfig::default());
    match sniff(path) {
        Format::Segmented => {
            let mut r = open_capture(path);
            r.scan(&ScanFilter::all(), |ev, _, _| monitor.observe(ev))
                .unwrap_or_else(|e| die_load(path, None, None, e));
        }
        Format::Binary => for_each_binary_event(path, |ev, _, _| monitor.observe(&ev)),
        Format::Jsonl => for_each_jsonl_event(path, |ev| monitor.observe(&ev)),
    }
    monitor.finalize();
    monitor
}

fn health(path: &str) {
    let m = monitor_file(path);
    let net = m.net();
    log_record(
        "health_summary",
        vec![
            ("path", Json::from(path.to_string())),
            ("events", Json::from(net.events)),
            ("tx", Json::from(net.tx_total)),
            ("rx", Json::from(net.rx_total)),
            ("drops", Json::from(net.drops_total())),
            ("forwards", Json::from(net.forwards)),
            ("dup_forwards", Json::from(net.dup_forwards)),
            ("delivers", Json::from(net.delivers)),
            ("dup_delivers", Json::from(net.dup_delivers)),
            ("route_installs", Json::from(net.route_installs)),
            ("alerts", Json::from(m.alerts().len())),
        ],
    );
    for (&id, g) in m.gateways() {
        log_record(
            "health_gateway",
            vec![
                ("gateway", Json::from(id)),
                ("delivers", Json::from(g.delivers)),
                ("moves", Json::from(g.moves)),
                ("routes_installed", Json::from(g.routes_installed)),
                ("deliver_rate", Json::Num(g.deliver_rate.get())),
                ("silence_latched", Json::from(g.silence_latched)),
            ],
        );
    }
    for a in m.alerts() {
        println!("{}", a.to_json());
    }
}

fn alerts(path: &str) {
    let m = monitor_file(path);
    print!("{}", m.alerts_jsonl());
}

/// Replay statistics go to stderr: stdout of `health --window` /
/// `explain` is `cmp`-gated against the `--full-scan` baseline, whose
/// statistics necessarily differ.
fn log_replay_stats(path: &str, stats: &WindowReplayStats) {
    log_error(
        "windowed_replay",
        vec![
            ("path", Json::from(path.to_string())),
            (
                "checkpoint_seg",
                stats.checkpoint_seg.map_or(Json::Null, Json::from),
            ),
            ("segments_read", Json::from(stats.segments_read)),
            ("segments_total", Json::from(stats.segments_total)),
            ("frames_decoded", Json::from(stats.frames_decoded)),
        ],
    );
}

/// `health --window lo..hi`: windowed detector replay over a segmented
/// capture. Prints exactly the alerts stamped inside the window —
/// byte-identical whether the replay resumed from a checkpoint or
/// (`--full-scan`) from genesis.
fn health_window(path: &str, lo: u64, hi: u64, full_scan: bool) {
    if sniff(path) != Format::Segmented {
        die_load(
            path,
            None,
            None,
            "health --window needs a segmented capture (the segment \
             directory drives checkpoint seek and segment skipping)"
                .to_string(),
        );
    }
    let mut r = open_capture(path);
    let (monitor, stats) = replay_window(&mut r, lo, hi, HealthConfig::default(), full_scan)
        .unwrap_or_else(|e| die_load(path, None, None, e));
    for a in alerts_in_window(&monitor, lo, hi) {
        println!("{}", a.to_json());
    }
    log_replay_stats(path, &stats);
}

/// `explain <capture> <alert#|json-line>`: provenance report for one
/// alert, via windowed replay of the aggregation windows leading up to
/// its stamp. An integer argument indexes the capture's embedded alert
/// stream; anything else must be the alert's JSON line.
fn explain(path: &str, which: &str, span: u64, full_scan: bool) {
    if sniff(path) != Format::Segmented {
        die_load(
            path,
            None,
            None,
            "explain needs a segmented capture (the segment directory \
             drives checkpoint seek and segment skipping)"
                .to_string(),
        );
    }
    let mut r = open_capture(path);
    let alert = if let Ok(idx) = which.parse::<usize>() {
        let Some(line) = r.alerts_jsonl().lines().nth(idx) else {
            die_load(
                path,
                None,
                None,
                format!(
                    "alert index {idx} out of range: the capture embeds {} alerts \
                     (record it through a checkpointing sink, or pass the alert's \
                     JSON line instead)",
                    r.alerts_jsonl().lines().count()
                ),
            );
        };
        HealthAlert::from_json_line(line).unwrap_or_else(|e| die_load(path, None, None, e))
    } else {
        HealthAlert::from_json_line(which).unwrap_or_else(|e| die_load(path, None, None, e))
    };
    let (forensics, stats) = explain_alert(&mut r, alert, span, HealthConfig::default(), full_scan)
        .unwrap_or_else(|e| die_load(path, None, None, e));
    print!("{}", forensics.report());
    log_replay_stats(path, &stats);
}

/// `compact <in> <out>`: rewrite a capture under the retention policy,
/// keeping frames only for recent and alert-adjacent segments.
fn compact(input: &str, out: &str, policy: CompactionPolicy) {
    let stats = compact_capture(
        std::path::Path::new(input),
        std::path::Path::new(out),
        HealthConfig::default(),
        policy,
    )
    .unwrap_or_else(|e| die_load(input, None, None, e));
    log_record(
        "compact",
        vec![
            ("input", Json::from(input.to_string())),
            ("out", Json::from(out.to_string())),
            ("segments_total", Json::from(stats.segments_total)),
            ("segments_retained", Json::from(stats.segments_retained)),
            ("segments_compacted", Json::from(stats.segments_compacted)),
            ("frames_retained", Json::from(stats.frames_retained)),
            ("frames_compacted", Json::from(stats.frames_compacted)),
            ("checkpoints", Json::from(stats.checkpoints)),
            ("alerts", Json::from(stats.alerts)),
        ],
    );
}

/// `record-e18 <out> [seed]`: the checkpointed gateway-death capture
/// the forensics CI steps replay (a healthy MLR round, the kill, a
/// failure round, recorded through `ForensicCaptureSink` with a
/// checkpoint at every 256-frame segment).
fn record_e18(out: &str, seed: u64) {
    let (stats, alerts) =
        wmsn_core::experiments::e18_forensics_capture(std::path::Path::new(out), seed);
    log_record(
        "record_e18",
        vec![
            ("out", Json::from(out.to_string())),
            ("seed", Json::from(seed)),
            ("frames", Json::from(stats.frames)),
            ("segments", Json::from(stats.segments)),
            ("bytes", Json::from(stats.bytes)),
            ("alerts", Json::from(alerts)),
        ],
    );
}

fn top(path: &str, k: usize) {
    let m = monitor_file(path);
    let mut order: Vec<(u64, usize)> = m
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, s)| (s.tx_total(), i))
        .filter(|&(tx, _)| tx > 0)
        .collect();
    // Busiest first; stable on ties by node id.
    order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in order.iter().take(k) {
        let s = &m.nodes()[i];
        log_record(
            "top_node",
            vec![
                ("node", Json::from(i as u64)),
                ("tx", Json::from(s.tx_total())),
                ("tx_control", Json::from(s.tx_control)),
                ("tx_data", Json::from(s.tx_data)),
                ("rx", Json::from(s.rx)),
                ("drops", Json::from(s.drops_total())),
                ("forwards", Json::from(s.forwards)),
                ("dup_forwards", Json::from(s.dup_forwards)),
                ("delivers", Json::from(s.delivers)),
                ("spontaneous_ctrl", Json::from(s.spontaneous_ctrl)),
            ],
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => {
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let mut format = Format::Jsonl;
            if rest.iter().any(|s| s.as_str() == "--bin") {
                format = Format::Binary;
            }
            if rest.iter().any(|s| s.as_str() == "--seg") {
                format = Format::Segmented;
            }
            rest.retain(|s| s.as_str() != "--bin" && s.as_str() != "--seg");
            let Some(out) = rest.first() else { usage() };
            let seed = rest.get(1).map_or(11, |s| parse_u64(s, "seed"));
            let rounds = rest.get(2).map_or(1, |s| parse_u64(s, "rounds")) as u32;
            record(out, seed, rounds, format);
        }
        Some("summary") => {
            let Some(path) = args.get(1) else { usage() };
            summary(path);
        }
        Some("path") => {
            let (Some(path), Some(o), Some(m)) = (args.get(1), args.get(2), args.get(3)) else {
                usage()
            };
            path_query(path, parse_u64(o, "origin"), parse_u64(m, "msg_id"));
        }
        Some("drop") => {
            let (Some(path), Some(s)) = (args.get(1), args.get(2)) else {
                usage()
            };
            drop_query(path, parse_u64(s, "seq"));
        }
        Some("energy") => {
            let (Some(path), Some(n)) = (args.get(1), args.get(2)) else {
                usage()
            };
            energy_query(path, parse_u64(n, "node"));
        }
        Some("health") => {
            let Some(path) = args.get(1) else { usage() };
            let full_scan = args.iter().any(|s| s == "--full-scan");
            if let Some(i) = args.iter().position(|s| s == "--window") {
                let Some(range) = args.get(i + 1) else {
                    usage()
                };
                let Some((lo, hi)) = range.split_once("..") else {
                    usage()
                };
                health_window(
                    path,
                    parse_u64(lo, "window start (us)"),
                    parse_u64(hi, "window end (us)"),
                    full_scan,
                );
            } else {
                health(path);
            }
        }
        Some("explain") => {
            let (Some(path), Some(which)) = (args.get(1), args.get(2)) else {
                usage()
            };
            let full_scan = args.iter().any(|s| s == "--full-scan");
            let span =
                args.iter()
                    .position(|s| s == "--span")
                    .map_or(4, |i| match args.get(i + 1) {
                        Some(w) => parse_u64(w, "span (windows)"),
                        None => usage(),
                    });
            explain(path, which, span, full_scan);
        }
        Some("compact") => {
            let (Some(input), Some(out)) = (args.get(1), args.get(2)) else {
                usage()
            };
            let mut policy = CompactionPolicy::default();
            if let Some(i) = args.iter().position(|s| s == "--keep-last") {
                match args.get(i + 1) {
                    Some(n) => policy.keep_last = parse_u64(n, "keep-last (segments)") as usize,
                    None => usage(),
                }
            }
            if let Some(i) = args.iter().position(|s| s == "--keep-alert-windows") {
                match args.get(i + 1) {
                    Some(w) => {
                        policy.alert_span_windows = parse_u64(w, "keep-alert-windows (windows)")
                    }
                    None => usage(),
                }
            }
            compact(input, out, policy);
        }
        Some("record-e18") => {
            let Some(out) = args.get(1) else { usage() };
            let seed = args.get(2).map_or(1, |s| parse_u64(s, "seed"));
            record_e18(out, seed);
        }
        Some("alerts") => {
            let Some(path) = args.get(1) else { usage() };
            alerts(path);
        }
        Some("top") => {
            let Some(path) = args.get(1) else { usage() };
            let k = args.get(2).map_or(10, |s| parse_u64(s, "k")) as usize;
            top(path, k);
        }
        Some("index") => {
            let Some(path) = args.get(1) else { usage() };
            index(path);
        }
        Some("pack") => {
            let (Some(input), Some(out)) = (args.get(1), args.get(2)) else {
                usage()
            };
            let seg = args
                .get(3)
                .map_or(DEFAULT_SEGMENT_FRAMES, |s| {
                    parse_u64(s, "segment_frames") as usize
                })
                .max(1);
            pack(input, out, seg);
        }
        Some("convert") => {
            let (Some(input), Some(out)) = (args.get(1), args.get(2)) else {
                usage()
            };
            convert(input, out);
        }
        _ => usage(),
    }
}
