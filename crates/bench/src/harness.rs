//! A tiny, dependency-free stand-in for the slice of the Criterion API
//! the per-experiment benches use.
//!
//! The workspace builds fully offline, so the real `criterion` crate is
//! not available. The benches only need `Criterion::default()`,
//! `sample_size`, `bench_function`, `benchmark_group` + `Throughput`, and
//! `Bencher::{iter, iter_with_setup}` — this module provides those with
//! the same shapes, timed with `std::time::Instant`.
//!
//! Methodology: after a warm-up call, each benchmark runs `sample_size`
//! samples; each sample times a batch of iterations sized so one batch
//! takes roughly [`TARGET_SAMPLE`]. We report the median and minimum
//! per-iteration time (median is robust to scheduler noise; min
//! approximates the noise floor).

use std::time::{Duration, Instant};

/// Batch-duration target per sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Throughput annotation for a benchmark group (bytes per iteration).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time a routine under `name`. The closure receives a [`Bencher`]
    /// and must call [`Bencher::iter`] or [`Bencher::iter_with_setup`].
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            per_iter: Vec::new(),
        };
        f(&mut b);
        report(name, &mut b.per_iter, None);
        self
    }

    /// Open a named group (supports a throughput annotation).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A benchmark group (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group's per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time a routine within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            per_iter: Vec::new(),
        };
        f(&mut b);
        report(
            &format!("{}/{name}", self.name),
            &mut b.per_iter,
            self.throughput,
        );
        self
    }

    /// End the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Per-benchmark timing state handed to the routine closure.
pub struct Bencher {
    sample_size: usize,
    per_iter: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, batching iterations per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + batch sizing from a single timed call.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.per_iter.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }

    /// Time `routine` only, re-running `setup` un-timed before every call.
    pub fn iter_with_setup<S, O, Setup, R>(&mut self, mut setup: Setup, mut routine: R)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.per_iter.push(t.elapsed().as_secs_f64());
        }
    }
}

fn report(name: &str, per_iter: &mut [f64], throughput: Option<Throughput>) {
    use wmsn_trace::log_record;
    use wmsn_util::json::Json;
    if per_iter.is_empty() {
        log_record(
            "bench",
            vec![
                ("name", Json::from(name.to_string())),
                ("samples", Json::from(0u64)),
            ],
        );
        return;
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let mut fields = vec![
        ("name", Json::from(name.to_string())),
        ("samples", Json::from(per_iter.len() as u64)),
        ("median_s", Json::Num(median)),
        ("min_s", Json::Num(min)),
    ];
    if let Some(Throughput::Bytes(bytes)) = throughput {
        if median > 0.0 {
            let mib = bytes as f64 / median / (1024.0 * 1024.0);
            fields.push(("mib_per_s", Json::Num(mib)));
        }
    }
    log_record("bench", fields);
}

/// Render a duration in seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Expand to a function running the listed targets against `config`
/// (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Expand to `fn main` running the listed groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        // Smoke: must not panic, and the closure must run.
        let mut ran = 0u32;
        c.bench_function("selftest/iter", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 3);
    }

    #[test]
    fn iter_with_setup_separates_setup_from_routine() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("selftest/setup", |b| {
            b.iter_with_setup(|| vec![1u8; 16], |v| v.len())
        });
    }

    #[test]
    fn fmt_secs_picks_sane_units() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(0.0025), "2.500 ms");
        assert_eq!(fmt_secs(0.0000025), "2.500 us");
        assert_eq!(fmt_secs(0.0000000025), "2.5 ns");
    }
}
