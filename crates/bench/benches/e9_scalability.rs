//! E9: constant-density scalability — flat single sink vs scaled gateways.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::e9_scalability;

fn bench(c: &mut Criterion) {
    // Analytic sweep up to 800 sensors; simulated latency up to 200.
    emit(
        "e9_scalability_analytic",
        &e9_scalability(&[50, 100, 200, 400, 800], 17, false),
    );
    emit(
        "e9_scalability_simulated",
        &e9_scalability(&[50, 100], 17, true),
    );
    c.bench_function("e9/analytic_400", |b| {
        b.iter(|| std::hint::black_box(e9_scalability(&[400], 17, false)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
