//! Micro-benchmarks of the substrates: cipher, MAC, hash chains, the
//! event queue, flood throughput, and the max-flow oracle.

use wmsn_bench::harness::{Criterion, Throughput};
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_crypto::hash::{chain_step, hash};
use wmsn_crypto::mac::cmac;
use wmsn_crypto::speck::Speck64;
use wmsn_crypto::Key128;
use wmsn_routing::flooding::{FloodMode, FloodSensor, FloodSink};
use wmsn_sim::{NodeConfig, World, WorldConfig};
use wmsn_util::Point;

fn crypto(c: &mut Criterion) {
    let cipher = Speck64::new([1, 2, 3, 4]);
    c.bench_function("micro/speck64_block", |b| {
        b.iter(|| cipher.encrypt_words(std::hint::black_box(0x12345678), 0x9abcdef0))
    });
    let key = Key128([9; 16]);
    let msg = [0xA5u8; 64];
    let mut g = c.benchmark_group("micro/cmac");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("cmac_64B", |b| {
        b.iter(|| cmac(&key, std::hint::black_box(&msg)))
    });
    g.finish();
    c.bench_function("micro/hash_64B", |b| {
        b.iter(|| hash(std::hint::black_box(&msg)))
    });
    let k = hash(b"chain");
    c.bench_function("micro/tesla_chain_step", |b| {
        b.iter(|| chain_step(std::hint::black_box(&k)))
    });
}

fn simulator(c: &mut Criterion) {
    // Flood a 10×10 grid: ~100 broadcasts + thousands of deliveries.
    c.bench_function("micro/flood_100_node_grid", |b| {
        b.iter_with_setup(
            || {
                let mut w = World::new({
                    let mut cfg = WorldConfig::ideal(1);
                    cfg.sensor_phy.range_m = 10.0;
                    cfg
                });
                let mut first = None;
                for y in 0..10 {
                    for x in 0..10 {
                        let id = w.add_node(
                            NodeConfig::sensor(Point::new(x as f64 * 9.0, y as f64 * 9.0), 1000.0),
                            FloodSensor::boxed(FloodMode::Flood, 32),
                        );
                        first.get_or_insert(id);
                    }
                }
                w.add_node(
                    NodeConfig::gateway(Point::new(85.0, 85.0)),
                    FloodSink::boxed(),
                );
                (w, first.unwrap())
            },
            |(mut w, src)| {
                w.start();
                w.with_behavior::<FloodSensor, _>(src, |s, ctx| s.originate(ctx));
                w.run_until(10_000_000);
                std::hint::black_box(w.metrics().sent_data)
            },
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = crypto, simulator
}
criterion_main!(benches);
