//! E7: the byte/latency/energy price of SecMLR vs plain MLR.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::e7_secmlr_cost;
use wmsn_crypto::{open, seal, Key128};

fn bench(c: &mut Criterion) {
    emit("e7_secmlr_cost", &e7_secmlr_cost(19));
    // Timed kernels: the crypto hot path at packet granularity.
    let key = Key128([7; 16]);
    let payload = [0u8; 40];
    c.bench_function("e7/seal_40B", |b| {
        b.iter(|| seal(&key, 9, std::hint::black_box(&payload)))
    });
    let sealed = seal(&key, 9, &payload);
    c.bench_function("e7/open_40B", |b| {
        b.iter(|| open(&key, std::hint::black_box(&sealed)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
