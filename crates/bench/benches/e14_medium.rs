//! E14: loss sweep + collision/CSMA ablation.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::builder::build_mlr;
use wmsn_core::drivers::MlrDriver;
use wmsn_core::experiments::e14_loss_and_collisions;
use wmsn_core::params::{FieldParams, GatewayParams, TrafficParams};

fn bench(c: &mut Criterion) {
    emit("e14_loss_and_collisions", &e14_loss_and_collisions(7));
    // Timed kernel: one lossy MLR round (loss stresses retry paths).
    c.bench_function("e14/lossy_round", |b| {
        b.iter_with_setup(
            || {
                let field = FieldParams {
                    loss_prob: 0.05,
                    battery_j: 10.0,
                    ..FieldParams::default_uniform(40, 7)
                };
                MlrDriver::new(build_mlr(
                    &field,
                    &GatewayParams::default_three(),
                    TrafficParams::default(),
                    0.0,
                ))
            },
            |mut d| std::hint::black_box(d.run_round()),
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
