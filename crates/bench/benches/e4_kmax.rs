//! E4: the K_max saturation sweep plus the placement-algorithm ablation.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::e4_kmax;
use wmsn_topology::{placement, Deployment, FeasiblePlaces};
use wmsn_util::{Rect, SplitMix64};

fn bench(c: &mut Criterion) {
    emit("e4_kmax", &e4_kmax(&[1, 2, 3, 4, 6, 8, 12, 16], 11));
    // Timed kernel: k-means placement of 3 gateways among 16 places.
    let field = Rect::field(100.0, 100.0);
    let mut rng = SplitMix64::new(11);
    let sensors = Deployment::Uniform { n: 120 }.generate(field, &mut rng);
    let places = FeasiblePlaces::grid(field, 4, 4);
    c.bench_function("e4/kmeans_placement", |b| {
        b.iter(|| {
            placement::place_gateways(
                placement::PlacementAlgorithm::KMeans { iterations: 10 },
                std::hint::black_box(&sensors),
                field,
                25.0,
                &places,
                3,
                &mut rng,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
