//! E16: the energy-aware route-selection ablation (§5.3's D² objective
//! made routable).

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::e16_energy_aware;

fn bench(c: &mut Criterion) {
    emit("e16_energy_aware", &e16_energy_aware(31));
    // Timed kernel: one energy-aware round (the full lifetime ablation
    // above runs once, un-timed).
    use wmsn_core::builder::build_mlr_with;
    use wmsn_core::drivers::MlrDriver;
    use wmsn_core::params::{FieldParams, GatewayParams, TrafficParams};
    use wmsn_routing::mlr::MlrConfig;
    c.bench_function("e16/energy_aware_round", |b| {
        b.iter_with_setup(
            || {
                MlrDriver::new(build_mlr_with(
                    &FieldParams {
                        battery_j: 10.0,
                        ..FieldParams::default_uniform(50, 31)
                    },
                    &GatewayParams::default_three(),
                    TrafficParams::default(),
                    MlrConfig {
                        energy_slack: 2,
                        ..MlrConfig::default()
                    },
                ))
            },
            |mut d| std::hint::black_box(d.run_round()),
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
