//! E2 (Table 1): the MLR incremental-table walkthrough in simulation.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::e2_table1;

fn bench(c: &mut Criterion) {
    emit("e2_table1", &e2_table1());
    c.bench_function("e2/table1_full_sim", |b| {
        b.iter(|| std::hint::black_box(e2_table1()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
