//! E1 (Fig. 2): hop counts single-sink vs three gateways — regenerates
//! the paper's numbers, then times the analytic hop-field kernel.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::{e1_fig2, e1_random_fields};
use wmsn_topology::connectivity::HopField;
use wmsn_topology::paper::fig2_three_gateways;

fn bench(c: &mut Criterion) {
    emit("e1_fig2", &e1_fig2());
    emit("e1_random_fields", &e1_random_fields(&[150, 300], 7));
    let topo = fig2_three_gateways();
    c.bench_function("e1/hopfield_fig2b", |b| {
        b.iter(|| HopField::compute(std::hint::black_box(&topo)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
