//! E15: the baseline comparison table (§2.2 quantified).

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::e15_baselines;

fn bench(c: &mut Criterion) {
    emit("e15_baselines", &e15_baselines(7));
    c.bench_function("e15/full_table", |b| {
        b.iter(|| std::hint::black_box(e15_baselines(7)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
