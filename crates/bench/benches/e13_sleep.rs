//! E13: GAF sleep scheduling — awake fraction vs energy vs delivery.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::e13_sleep_scheduling;
use wmsn_topology::control::gaf_sleep_schedule;
use wmsn_topology::Deployment;
use wmsn_util::{Rect, SplitMix64};

fn bench(c: &mut Criterion) {
    emit("e13_sleep_scheduling", &e13_sleep_scheduling(7));
    let mut rng = SplitMix64::new(7);
    let pts = Deployment::Uniform { n: 400 }.generate(Rect::field(100.0, 100.0), &mut rng);
    let energies = vec![1.0; pts.len()];
    c.bench_function("e13/gaf_schedule_400", |b| {
        b.iter(|| gaf_sleep_schedule(std::hint::black_box(&pts), &energies, 25.0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
