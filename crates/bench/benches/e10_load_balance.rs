//! E10: QoS load balance under a traffic hot spot.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::e10_load_balance;

fn bench(c: &mut Criterion) {
    emit("e10_load_balance", &e10_load_balance(3));
    c.bench_function("e10/hotspot_run", |b| {
        b.iter(|| std::hint::black_box(e10_load_balance(3)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
