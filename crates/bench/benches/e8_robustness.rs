//! E8: robustness — dead LEACH heads vs dead WMSN gateways + redirect.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::builder::build_leach;
use wmsn_core::drivers::LeachDriver;
use wmsn_core::experiments::e8_robustness;
use wmsn_core::params::{FieldParams, TrafficParams};
use wmsn_util::Point;

fn bench(c: &mut Criterion) {
    emit("e8_robustness", &e8_robustness(13));
    c.bench_function("e8/leach_round", |b| {
        b.iter_with_setup(
            || {
                LeachDriver::new(build_leach(
                    &FieldParams {
                        battery_j: 10.0,
                        ..FieldParams::default_uniform(60, 13)
                    },
                    Point::new(50.0, 140.0),
                    0.12,
                    TrafficParams::default(),
                ))
            },
            |mut d| std::hint::black_box(d.run_round(false)),
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
