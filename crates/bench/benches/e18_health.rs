//! E18: blind attack fingerprinting and monitor-driven recovery.
//!
//! Runs every E6 attack cell with the health monitor installed as the
//! trace sink (the monitor never learns which attack — or whether any —
//! is running) and reports the detection matrix, then the E8-style
//! gateway-death scenario recovered by the `HealthPolicy` loop instead
//! of a scripted repair.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::{e18_detection, e18_recovery, run_attack_cell_monitored, Attack};
use wmsn_health::HealthConfig;

fn bench(c: &mut Criterion) {
    emit("e18_detection", &e18_detection(1));
    emit("e18_recovery", &e18_recovery(1));
    c.bench_function("e18/monitored_replay_cell", |b| {
        b.iter(|| {
            std::hint::black_box(run_attack_cell_monitored(
                wmsn_attacks::sinkhole::TargetProtocol::Mlr,
                Attack::Replay,
                1,
                HealthConfig::default(),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
