//! E6: the attack-resistance matrix (MLR vs SecMLR × the §2.3 taxonomy).

use wmsn_attacks::sinkhole::TargetProtocol;
use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::{e6_attacks, run_attack_cell, Attack};

fn bench(c: &mut Criterion) {
    emit("e6_attacks", &e6_attacks(1));
    c.bench_function("e6/secmlr_vs_sinkhole_cell", |b| {
        b.iter(|| {
            std::hint::black_box(run_attack_cell(TargetProtocol::SecMlr, Attack::Sinkhole, 1))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
