//! E12: the full three-layer architecture end-to-end (Fig. 1).

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::e12_three_tier;

fn bench(c: &mut Criterion) {
    emit("e12_three_tier", &e12_three_tier(23));
    c.bench_function("e12/three_tier_run", |b| {
        b.iter(|| std::hint::black_box(e12_three_tier(23)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
