//! E3: network lifetime — SPR (m=1, m=3) vs MLR vs the optimal bound.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::builder::build_spr;
use wmsn_core::experiments::e3_lifetime;
use wmsn_core::params::{FieldParams, GatewayParams, TrafficParams};
use wmsn_routing::optimal_lifetime_rounds;

fn bench(c: &mut Criterion) {
    emit("e3_lifetime", &e3_lifetime(&[40, 80], 31));
    // Timed kernel: the Dinic optimal-lifetime oracle on an 80-node field.
    let scen = build_spr(
        &FieldParams::default_uniform(80, 31),
        &GatewayParams::default_three(),
        TrafficParams::default(),
    );
    let topo = scen.topology();
    c.bench_function("e3/optimal_bound_80", |b| {
        b.iter(|| optimal_lifetime_rounds(std::hint::black_box(&topo), 1.0, 1e-3, 1e-3, 1.0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
