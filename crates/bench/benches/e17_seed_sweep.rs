//! E17: seed-robustness sweep, fanned out across cores —
//! the throughput benchmark for running many independent simulations.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::experiments::{e17_seed_sweep, parallel_sweep};

fn bench(c: &mut Criterion) {
    let seeds: Vec<u64> = (1..=8).collect();
    emit("e17_seed_sweep", &e17_seed_sweep(&seeds));
    // Throughput: 8 parallel scenario builds + analytic hop fields.
    c.bench_function("e17/parallel_hopfields_x8", |b| {
        b.iter(|| {
            parallel_sweep(&seeds, |seed| {
                use wmsn_core::builder::build_spr;
                use wmsn_core::params::{FieldParams, GatewayParams, TrafficParams};
                use wmsn_topology::connectivity::HopField;
                let scen = build_spr(
                    &FieldParams::default_uniform(100, seed),
                    &GatewayParams::default_three(),
                    TrafficParams::default(),
                );
                let hf = HopField::compute(&scen.topology());
                std::hint::black_box(hf.mean_sensor_hops(100))
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
