//! E5: incremental MLR tables vs reset-every-round control overhead.

use wmsn_bench::emit;
use wmsn_bench::harness::Criterion;
use wmsn_bench::{criterion_group, criterion_main};
use wmsn_core::builder::build_mlr;
use wmsn_core::drivers::MlrDriver;
use wmsn_core::experiments::e5_overhead;
use wmsn_core::params::{FieldParams, GatewayParams, TrafficParams};

fn bench(c: &mut Criterion) {
    emit("e5_overhead", &e5_overhead(8, 5));
    // Timed kernel: one steady-state MLR round on a 60-sensor field.
    c.bench_function("e5/steady_state_round", |b| {
        b.iter_with_setup(
            || {
                let mut d = MlrDriver::new(build_mlr(
                    &FieldParams {
                        battery_j: 10.0,
                        ..FieldParams::default_uniform(60, 5)
                    },
                    &GatewayParams::default_three(),
                    TrafficParams::default(),
                    0.0,
                ));
                d.run_round(); // discovery happens here, outside the timing
                d
            },
            |mut d| std::hint::black_box(d.run_round()),
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
