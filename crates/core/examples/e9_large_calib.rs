//! One-off calibration probe for the E9 large round: prints wall time
//! and event counts for a few source counts on both kernels.
//!
//! ```sh
//! cargo run --release -p wmsn-core --example e9_large_calib -- <n> <sources...>
//! ```

use std::time::Instant;
use wmsn_core::experiments::e9_large;
use wmsn_core::params::ParallelConfig;

/// Which kernels to time, from `WMSN_CALIB_ONLY` (comma-separated
/// subset of `sharded,fastref,ref`; unset = all three).
fn wanted(kernel: &str) -> bool {
    match std::env::var("WMSN_CALIB_ONLY") {
        Ok(list) => list.split(',').any(|k| k.trim() == kernel),
        Err(_) => true,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let sources: Vec<usize> = args.filter_map(|a| a.parse().ok()).collect();
    let sources = if sources.is_empty() { vec![4] } else { sources };
    for s in sources {
        let tb = Instant::now();
        let _ = wmsn_core::experiments::e9_large_scenario(n, 17);
        eprintln!("build: {:.2}s", tb.elapsed().as_secs_f64());
        if wanted("sharded") {
            let t0 = Instant::now();
            let sharded = e9_large(n, 17, s, true, Some(ParallelConfig::per_thread(1)));
            eprintln!(
                "sharded+fast: {:.2}s ({} ev, ratio {:.3}, peak {})",
                t0.elapsed().as_secs_f64(),
                sharded.events,
                sharded.delivery_ratio,
                sharded.peak_queue_depth
            );
        }
        if wanted("fastref") {
            let tf = Instant::now();
            let fast_ref = e9_large(n, 17, s, true, None);
            eprintln!(
                "ref+fast: {:.2}s ({} ev)",
                tf.elapsed().as_secs_f64(),
                fast_ref.events
            );
        }
        if wanted("ref") {
            let t2 = Instant::now();
            let reference = e9_large(n, 17, s, false, None);
            eprintln!(
                "ref: {:.2}s ({} ev)",
                t2.elapsed().as_secs_f64(),
                reference.events
            );
        }
    }
}
