//! `wmsn-core` — the top of the stack: scenario construction, round
//! drivers, and the experiment runners that regenerate every figure,
//! table, and quantified claim of the paper.
//!
//! * [`params`] — declarative scenario descriptions (field, energy,
//!   gateways, movement, traffic).
//! * [`builder`] — turn a scenario into a running [`wmsn_sim::World`]
//!   populated with the right behaviours, including the full three-layer
//!   architecture of Fig. 1 (sensors + WMGs + WMRs + base stations) via
//!   the composite [`wmg::WmgBehavior`].
//! * [`drivers`] — round orchestration: gateway movement, announcements,
//!   traffic generation, per-round metrics snapshots, and
//!   run-until-first-death lifetime loops for SPR, MLR, SecMLR, and
//!   LEACH.
//! * [`experiments`] — `e1_…` through `e12_…`, each returning
//!   [`wmsn_util::stats::ReportRow`]s; the criterion benches and the
//!   examples print these, and EXPERIMENTS.md records them against the
//!   paper.
//! * [`report`] — terminal table + JSON rendering of report rows.
//! * [`health_loop`] — the self-healing loop: drain `wmsn-health`
//!   monitor alerts and apply policy actions to the running stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod drivers;
pub mod experiments;
pub mod health_loop;
pub mod params;
pub mod report;
pub mod wmg;

/// Common imports for examples and downstream users.
pub mod prelude {
    pub use crate::builder::{
        build_mlr, build_mlr_with, build_secmlr, build_spr, build_three_tier, MlrScenario,
        SecMlrScenario, SprScenario, ThreeTierScenario,
    };
    pub use crate::drivers::{LifetimeResult, MlrDriver, RoundReport, SecMlrDriver, SprDriver};
    pub use crate::health_loop::{apply_to_mlr, apply_to_secmlr, drain_actions};
    pub use crate::params::{FieldParams, GatewayParams, TrafficParams};
    pub use crate::report::{print_rows, rows_to_json};
    pub use wmsn_health::{HealthAlert, HealthConfig, HealthMonitor, HealthPolicy};
    pub use wmsn_sim::{Metrics, World, WorldConfig};
    pub use wmsn_util::stats::ReportRow;
}
