//! The composite WMG behaviour: Fig. 1's dual-homed gateway.
//!
//! A wireless mesh gateway is simultaneously (a) the sink of its sensor
//! subnet — here the MLR gateway protocol — and (b) a router of the
//! 802.11 mesh backbone — here the link-state [`MeshRouter`]. This
//! composite dispatches by radio tier and, when an uplink base station is
//! configured, forwards every accepted sensor reading across the backbone
//! ("Internet for users to remotely access sensed data", §3.2).

use std::any::Any;
use wmsn_routing::mesh::MeshRouter;
use wmsn_routing::mlr::MlrGateway;
use wmsn_routing::wire::{peek, PeekHeader};
use wmsn_sim::{Behavior, Ctx, Packet, Tier};
use wmsn_util::NodeId;

/// MLR gateway + mesh router in one node.
pub struct WmgBehavior {
    /// Sensor-tier sink protocol.
    pub gateway: MlrGateway,
    /// Backbone link-state engine.
    pub mesh: MeshRouter,
    /// Base station to forward accepted readings to (mesh tier).
    pub uplink: Option<NodeId>,
    /// Readings forwarded up the backbone.
    pub uplinked: u64,
}

impl WmgBehavior {
    /// New WMG at feasible `place`, optionally uplinking to `uplink`.
    pub fn new(place: u16, uplink: Option<NodeId>) -> Self {
        WmgBehavior {
            gateway: MlrGateway::new(place),
            mesh: MeshRouter::new(100_000),
            uplink,
            uplinked: 0,
        }
    }

    /// Boxed, for `World::add_node`.
    pub fn boxed(place: u16, uplink: Option<NodeId>) -> Box<dyn Behavior> {
        Box::new(Self::new(place, uplink))
    }
}

impl Behavior for WmgBehavior {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.mesh.on_start(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        match pkt.tier {
            Tier::Mesh => {
                // WMGs relay backbone traffic; payloads terminating here
                // (rare — readings flow toward base stations) are dropped.
                let _ = self.mesh.on_packet(ctx, pkt);
            }
            Tier::Sensor => {
                // Detect accepted data before handing to the sink logic —
                // a fixed-offset header peek, no frame materialisation.
                let is_my_data = matches!(
                    peek(&pkt.payload),
                    Ok(PeekHeader::Data { gateway, .. }) if gateway == ctx.id()
                );
                self.gateway.on_packet(ctx, pkt);
                if is_my_data {
                    if let Some(base) = self.uplink {
                        if self.mesh.send(ctx, base, pkt.payload.to_vec()) {
                            self.uplinked += 1;
                        }
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if !self.mesh.on_timer(ctx, tag) {
            self.gateway.on_timer(ctx, tag);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_routing::mesh::MeshNode;
    use wmsn_routing::mlr::{MlrConfig, MlrSensor};
    use wmsn_sim::{NodeConfig, World, WorldConfig};
    use wmsn_util::Point;

    #[test]
    fn wmg_relays_backbone_traffic_between_other_mesh_nodes() {
        // base — WMG — WMR chain on the mesh tier: the WMG must forward
        // backbone frames it is not the destination of.
        let mut w = World::new({
            let mut c = WorldConfig::ideal(2);
            c.mesh_phy.range_m = 120.0;
            c
        });
        let base = w.add_node(
            NodeConfig::base_station(Point::new(0.0, 0.0)),
            MeshNode::boxed(),
        );
        let wmg = w.add_node(
            NodeConfig::gateway(Point::new(100.0, 0.0)),
            WmgBehavior::boxed(0, Some(base)),
        );
        let wmr = w.add_node(
            NodeConfig::mesh_router(Point::new(200.0, 0.0)),
            MeshNode::boxed(),
        );
        w.run_until(2_000_000);
        w.with_behavior::<MeshNode, _>(wmr, |n, ctx| {
            assert!(n.router.send(ctx, base, b"via-wmg".to_vec()));
        });
        w.run_for(1_000_000);
        let delivered = &w.behavior_as::<MeshNode>(base).unwrap().delivered;
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].1, b"via-wmg".to_vec());
        assert_eq!(
            w.behavior_as::<WmgBehavior>(wmg).unwrap().mesh.forwarded,
            1,
            "the WMG must have relayed the frame"
        );
    }

    #[test]
    fn wmg_without_uplink_absorbs_but_does_not_forward() {
        let mut w = World::new({
            let mut c = WorldConfig::ideal(3);
            c.sensor_phy.range_m = 10.0;
            c
        });
        let sensor = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
            MlrSensor::boxed(MlrConfig::default()),
        );
        let wmg = w.add_node(
            NodeConfig::gateway(Point::new(10.0, 0.0)),
            WmgBehavior::boxed(0, None),
        );
        w.start();
        w.with_behavior::<WmgBehavior, _>(wmg, |g, ctx| g.gateway.set_place(ctx, 0, 0));
        w.run_for(500_000);
        w.with_behavior::<MlrSensor, _>(sensor, |s, ctx| s.originate(ctx));
        w.run_for(2_000_000);
        let g = w.behavior_as::<WmgBehavior>(wmg).unwrap();
        assert_eq!(g.gateway.absorbed, 1);
        assert_eq!(g.uplinked, 0, "no uplink configured");
    }

    #[test]
    fn sensor_reading_reaches_the_base_station_end_to_end() {
        let mut w = World::new({
            let mut c = WorldConfig::ideal(1);
            c.sensor_phy.range_m = 10.0;
            c.mesh_phy.range_m = 120.0;
            c
        });
        // Sensor — WMG ——(mesh)—— WMR ——(mesh)—— Base.
        let sensor = w.add_node(
            NodeConfig::sensor(Point::new(0.0, 0.0), 100.0),
            MlrSensor::boxed(MlrConfig::default()),
        );
        let base_id = NodeId(3);
        let wmg = w.add_node(
            NodeConfig::gateway(Point::new(10.0, 0.0)),
            WmgBehavior::boxed(0, Some(base_id)),
        );
        let _wmr = w.add_node(
            NodeConfig::mesh_router(Point::new(110.0, 0.0)),
            MeshNode::boxed(),
        );
        let base = w.add_node(
            NodeConfig::base_station(Point::new(210.0, 0.0)),
            MeshNode::boxed(),
        );
        assert_eq!(base, base_id);
        // Let the backbone converge (hellos + LSAs).
        w.run_until(2_000_000);
        // Announce the gateway's place on the sensor tier, then report.
        w.with_behavior::<WmgBehavior, _>(wmg, |g, ctx| g.gateway.set_place(ctx, 0, 0));
        w.run_for(500_000);
        w.with_behavior::<MlrSensor, _>(sensor, |s, ctx| s.originate(ctx));
        w.run_for(3_000_000);
        // Delivered at the WMG (sensor tier) …
        assert_eq!(
            w.behavior_as::<WmgBehavior>(wmg).unwrap().gateway.absorbed,
            1
        );
        assert_eq!(w.behavior_as::<WmgBehavior>(wmg).unwrap().uplinked, 1);
        // … and at the base station (mesh tier), two backbone hops away.
        let delivered = &w.behavior_as::<MeshNode>(base).unwrap().delivered;
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].0, wmg);
    }
}
