//! Declarative scenario parameters.
//!
//! A scenario is three orthogonal blocks: the *field* (where sensors are
//! and how the radio behaves), the *gateways* (how many, where they may
//! sit, how they move), and the *traffic* (who reports how often). All
//! experiment runners build on these so that sweeps vary exactly one knob
//! at a time.

use wmsn_sim::{CollisionModel, EnergyModel, MediumConfig, WorldConfig};
use wmsn_topology::{Deployment, MovementPolicy, PlacementAlgorithm};
use wmsn_util::Rect;

/// The sensor field and radio environment.
#[derive(Clone, Debug)]
pub struct FieldParams {
    /// Number of sensors.
    pub n_sensors: usize,
    /// Field boundary.
    pub field: Rect,
    /// Sensor-tier radio range (m).
    pub range_m: f64,
    /// How sensors are scattered.
    pub deployment: Deployment,
    /// Per-sensor battery (J).
    pub battery_j: f64,
    /// Energy model.
    pub energy: EnergyModel,
    /// Independent per-reception loss probability.
    pub loss_prob: f64,
    /// Enable the receiver-overlap collision model.
    pub collisions: bool,
    /// Enable CSMA carrier sensing (listen-before-talk + backoff) —
    /// pair with `collisions` for a realistic contention model.
    pub csma: bool,
    /// Master seed.
    pub seed: u64,
    /// Re-draw the deployment (up to 100 attempts) until the sensor
    /// graph is one connected component. Random uniform fields at
    /// moderate density routinely leave small islands whose traffic no
    /// protocol can deliver; connected fields keep delivery-ratio
    /// comparisons about routing, not geometry.
    pub require_connected: bool,
}

impl FieldParams {
    /// A 100-sensor, 100 m × 100 m uniform field with paper-default
    /// energy and an ideal medium — the baseline workload.
    pub fn default_uniform(n_sensors: usize, seed: u64) -> Self {
        FieldParams {
            n_sensors,
            field: Rect::field(100.0, 100.0),
            range_m: 25.0,
            deployment: Deployment::Uniform { n: n_sensors },
            battery_j: 1.0,
            energy: EnergyModel::per_packet_default(),
            loss_prob: 0.0,
            collisions: false,
            csma: false,
            seed,
            require_connected: true,
        }
    }

    /// Scale the field so that sensor density stays constant as `n`
    /// grows (the E9 scalability sweep).
    pub fn constant_density(n_sensors: usize, density_per_m2: f64, seed: u64) -> Self {
        let area = n_sensors as f64 / density_per_m2;
        let side = area.sqrt();
        FieldParams {
            field: Rect::field(side, side),
            deployment: Deployment::Uniform { n: n_sensors },
            ..FieldParams::default_uniform(n_sensors, seed)
        }
    }

    /// The corresponding simulator configuration.
    pub fn world_config(&self) -> WorldConfig {
        let mut cfg = WorldConfig::ideal(self.seed);
        cfg.sensor_phy.range_m = self.range_m;
        cfg.energy = self.energy;
        cfg.medium = MediumConfig {
            loss_prob: self.loss_prob,
            collisions: if self.collisions {
                CollisionModel::ReceiverOverlap
            } else {
                CollisionModel::None
            },
            csma: self.csma,
            ..MediumConfig::default()
        };
        cfg
    }
}

/// Gateway deployment and mobility.
#[derive(Clone, Debug)]
pub struct GatewayParams {
    /// Number of gateways `m`.
    pub m: usize,
    /// Feasible-place grid dimensions (cols × rows) over the field.
    pub place_grid: (usize, usize),
    /// Initial placement algorithm.
    pub placement: PlacementAlgorithm,
    /// Round-by-round movement.
    pub movement: MovementPolicy,
}

impl GatewayParams {
    /// Three static gateways on a 3×3 place grid, k-means initial
    /// placement — the paper's Fig. 2(b)-style configuration.
    pub fn default_three() -> Self {
        GatewayParams {
            m: 3,
            place_grid: (3, 3),
            placement: PlacementAlgorithm::KMeans { iterations: 10 },
            movement: MovementPolicy::Static,
        }
    }

    /// `m` gateways rotating round-robin over the place grid (the MLR
    /// mobility workload).
    pub fn rotating(m: usize, cols: usize, rows: usize) -> Self {
        GatewayParams {
            m,
            place_grid: (cols, rows),
            placement: PlacementAlgorithm::KMeans { iterations: 10 },
            movement: MovementPolicy::RoundRobin,
        }
    }

    /// Total number of feasible places `|P|`.
    pub fn n_places(&self) -> usize {
        self.place_grid.0 * self.place_grid.1
    }
}

/// Parallel-kernel execution knobs for the large-scale scenarios.
///
/// The field is cut into `shards` vertical strips (see
/// `wmsn_topology::strip_shards`) and driven by `threads` workers.
/// `shards >= threads` keeps every worker busy; extra shards beyond the
/// thread count only add boundary seams without adding parallelism.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Number of spatial shards.
    pub shards: usize,
    /// Worker threads driving the shards.
    pub threads: usize,
}

impl ParallelConfig {
    /// One shard per thread — the default cut.
    pub fn per_thread(threads: usize) -> Self {
        let threads = threads.max(1);
        ParallelConfig {
            shards: threads,
            threads,
        }
    }
}

/// Traffic generation.
#[derive(Clone, Copy, Debug)]
pub struct TrafficParams {
    /// Application messages per sensor per round (`T` in eq. 3).
    pub msgs_per_sensor_per_round: u32,
    /// Round duration (µs) — traffic is spread across the first half so
    /// everything settles before the round closes.
    pub round_duration_us: u64,
    /// Fraction of sensors that report each round (1.0 = everyone).
    pub reporting_fraction: f64,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            msgs_per_sensor_per_round: 1,
            round_duration_us: 4_000_000,
            reporting_fraction: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_field_is_well_formed() {
        let f = FieldParams::default_uniform(100, 1);
        assert_eq!(f.n_sensors, 100);
        let cfg = f.world_config();
        assert_eq!(cfg.sensor_phy.range_m, 25.0);
        assert_eq!(cfg.medium.loss_prob, 0.0);
    }

    #[test]
    fn constant_density_scales_area_linearly() {
        let a = FieldParams::constant_density(50, 0.01, 1);
        let b = FieldParams::constant_density(200, 0.01, 1);
        assert!((b.field.area() / a.field.area() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn gateway_param_helpers() {
        let g = GatewayParams::default_three();
        assert_eq!(g.m, 3);
        assert_eq!(g.n_places(), 9);
        let r = GatewayParams::rotating(2, 4, 2);
        assert_eq!(r.n_places(), 8);
        assert!(matches!(r.movement, MovementPolicy::RoundRobin));
    }

    #[test]
    fn collisions_flag_maps_to_model() {
        let mut f = FieldParams::default_uniform(10, 1);
        f.collisions = true;
        assert!(matches!(
            f.world_config().medium.collisions,
            CollisionModel::ReceiverOverlap
        ));
    }
}
