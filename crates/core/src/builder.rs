//! Scenario builders: parameters in, populated worlds out.
//!
//! Node-id layout is fixed and documented: **sensors first** (ids
//! `0..n_sensors`), **then gateways** (`n_sensors..n_sensors+m`), then —
//! in the three-tier scenario — WMRs and finally base stations. Builders
//! return the id lists so drivers and experiments never guess.

use crate::params::{FieldParams, GatewayParams, TrafficParams};
use crate::wmg::WmgBehavior;
use wmsn_crypto::tesla::TeslaReceiver;
use wmsn_crypto::{Key128, KeyStore};
use wmsn_routing::leach::{LeachConfig, LeachSensor, LeachSink};
use wmsn_routing::mesh::MeshNode;
use wmsn_routing::mlr::{MlrConfig, MlrGateway, MlrSensor};
use wmsn_routing::spr::{SprConfig, SprGateway, SprSensor};
use wmsn_secure::{SecGatewayConfig, SecMlrGateway, SecMlrSensor, SecSensorConfig};
use wmsn_sim::{NodeConfig, World};
use wmsn_topology::{placement, FeasiblePlaces, MovementSchedule, Topology};
use wmsn_util::{NodeId, Point, SplitMix64};

/// Generate the sensor deployment, redrawing until connected when the
/// field asks for it.
fn generate_sensors(field: &FieldParams, rng: &mut SplitMix64) -> Vec<Point> {
    use wmsn_topology::connectivity::is_connected;
    use wmsn_util::geom::unit_disk_adjacency;
    for attempt in 0..100 {
        let pts = field.deployment.generate(field.field, rng);
        if !field.require_connected || is_connected(&unit_disk_adjacency(&pts, field.range_m)) {
            return pts;
        }
        let _ = attempt;
    }
    panic!(
        "could not draw a connected {}-sensor field at range {} in 100 attempts",
        field.n_sensors, field.range_m
    );
}

/// Shared outcome of gateway placement.
fn place_initial(
    field: &FieldParams,
    gw: &GatewayParams,
    sensors: &[Point],
    rng: &mut SplitMix64,
) -> (FeasiblePlaces, Vec<usize>) {
    let places = FeasiblePlaces::grid(field.field, gw.place_grid.0, gw.place_grid.1);
    let initial = placement::place_gateways(
        gw.placement,
        sensors,
        field.field,
        field.range_m,
        &places,
        gw.m,
        rng,
    );
    (places, initial)
}

/// An MLR scenario ready to drive.
pub struct MlrScenario {
    /// The world.
    pub world: World,
    /// Sensor ids (`0..n`).
    pub sensors: Vec<NodeId>,
    /// Gateway ids (`n..n+m`).
    pub gateways: Vec<NodeId>,
    /// Feasible places.
    pub places: FeasiblePlaces,
    /// Movement schedule (round 0 not yet produced).
    pub schedule: MovementSchedule,
    /// Traffic parameters.
    pub traffic: TrafficParams,
    /// Sensor positions (for analytic comparisons).
    pub sensor_positions: Vec<Point>,
    /// Sensor radio range.
    pub range_m: f64,
}

impl MlrScenario {
    /// The analytic topology for the currently-occupied places.
    pub fn topology_for(&self, occupied: &[usize]) -> Topology {
        let gws = occupied.iter().map(|&p| self.places.position(p)).collect();
        Topology::new(
            self.sensor_positions.clone(),
            gws,
            wmsn_util::Rect::from_corners(
                Point::new(f64::MIN / 4.0, f64::MIN / 4.0),
                Point::new(f64::MAX / 4.0, f64::MAX / 4.0),
            ),
            self.range_m,
        )
    }
}

/// Build an MLR scenario. `load_alpha > 0` enables §4.3 load balancing.
pub fn build_mlr(
    field: &FieldParams,
    gw: &GatewayParams,
    traffic: TrafficParams,
    load_alpha: f64,
) -> MlrScenario {
    build_mlr_with(
        field,
        gw,
        traffic,
        MlrConfig {
            load_alpha,
            ..MlrConfig::default()
        },
    )
}

/// Build an MLR scenario with full protocol configuration (energy-aware
/// selection, jitter, retry tuning).
pub fn build_mlr_with(
    field: &FieldParams,
    gw: &GatewayParams,
    traffic: TrafficParams,
    mlr_cfg: MlrConfig,
) -> MlrScenario {
    let mut rng = SplitMix64::new(field.seed).split(0xB01D);
    let sensor_positions = generate_sensors(field, &mut rng);
    let (places, initial) = place_initial(field, gw, &sensor_positions, &mut rng);
    let mut world = World::new(field.world_config());
    let sensors: Vec<NodeId> = sensor_positions
        .iter()
        .map(|&pos| {
            world.add_node(
                NodeConfig::sensor(pos, field.battery_j),
                MlrSensor::boxed(mlr_cfg),
            )
        })
        .collect();
    let gateways: Vec<NodeId> = initial
        .iter()
        .map(|&p| {
            world.add_node(
                NodeConfig::gateway(places.position(p)),
                MlrGateway::boxed(p as u16),
            )
        })
        .collect();
    let schedule = MovementSchedule::new(gw.movement.clone(), &places, initial, field.seed);
    MlrScenario {
        world,
        sensors,
        gateways,
        places,
        schedule,
        traffic,
        sensor_positions,
        range_m: field.range_m,
    }
}

/// An SPR scenario (static gateways; the `m = 1` case is the flat
/// single-sink baseline of Fig. 2(a)).
///
/// Generic over the simulation host so the same scenario (and the
/// [`crate::drivers::SprDriver`] running it) works on the
/// single-threaded reference [`World`] or the sharded parallel kernel
/// — build on a `World`, then lift with [`SprScenario::map_world`].
pub struct SprScenario<H = World> {
    /// The world.
    pub world: H,
    /// Sensor ids.
    pub sensors: Vec<NodeId>,
    /// Gateway ids.
    pub gateways: Vec<NodeId>,
    /// Traffic parameters.
    pub traffic: TrafficParams,
    /// Sensor positions.
    pub sensor_positions: Vec<Point>,
    /// Gateway positions.
    pub gateway_positions: Vec<Point>,
    /// Radio range.
    pub range_m: f64,
}

/// Build an SPR scenario with `gw.m` statically-placed gateways.
pub fn build_spr(field: &FieldParams, gw: &GatewayParams, traffic: TrafficParams) -> SprScenario {
    let mut rng = SplitMix64::new(field.seed).split(0xB01D);
    let sensor_positions = generate_sensors(field, &mut rng);
    let (places, initial) = place_initial(field, gw, &sensor_positions, &mut rng);
    let gateway_positions: Vec<Point> = initial.iter().map(|&p| places.position(p)).collect();
    let mut world = World::new(field.world_config());
    let sensors: Vec<NodeId> = sensor_positions
        .iter()
        .map(|&pos| {
            world.add_node(
                NodeConfig::sensor(pos, field.battery_j),
                SprSensor::boxed(SprConfig::default()),
            )
        })
        .collect();
    let gateways: Vec<NodeId> = gateway_positions
        .iter()
        .map(|&pos| world.add_node(NodeConfig::gateway(pos), SprGateway::boxed()))
        .collect();
    SprScenario {
        world,
        sensors,
        gateways,
        traffic,
        sensor_positions,
        gateway_positions,
        range_m: field.range_m,
    }
}

/// [`build_spr`] plus the mesh tier: one base station at the field
/// centre on a mesh radio stretched to the field diagonal, so every
/// gateway can unicast delivered data up the backbone. Returns the
/// scenario and the base-station id.
///
/// The uplink wiring itself (`SprGateway::set_uplink`) happens at round
/// start — see `experiments::e9_large_round` — so the returned world is
/// still un-started and can be lifted onto the sharded kernel via
/// [`SprScenario::map_world`].
pub fn build_spr_three_tier(
    field: &FieldParams,
    gw: &GatewayParams,
    traffic: TrafficParams,
) -> (SprScenario, NodeId) {
    let mut rng = SplitMix64::new(field.seed).split(0xB01D);
    let sensor_positions = generate_sensors(field, &mut rng);
    let (places, initial) = place_initial(field, gw, &sensor_positions, &mut rng);
    let gateway_positions: Vec<Point> = initial.iter().map(|&p| places.position(p)).collect();
    let mut cfg = field.world_config();
    cfg.mesh_phy.range_m = field.field.diagonal() + 1.0;
    let mut world = World::new(cfg);
    let sensors: Vec<NodeId> = sensor_positions
        .iter()
        .map(|&pos| {
            world.add_node(
                NodeConfig::sensor(pos, field.battery_j),
                SprSensor::boxed(SprConfig::default()),
            )
        })
        .collect();
    let gateways: Vec<NodeId> = gateway_positions
        .iter()
        .map(|&pos| world.add_node(NodeConfig::gateway(pos), SprGateway::boxed()))
        .collect();
    let base = world.add_node(
        NodeConfig::base_station(field.field.center()),
        SprGateway::boxed(),
    );
    (
        SprScenario {
            world,
            sensors,
            gateways,
            traffic,
            sensor_positions,
            gateway_positions,
            range_m: field.range_m,
        },
        base,
    )
}

impl<H> SprScenario<H> {
    /// Analytic topology of this scenario.
    pub fn topology(&self) -> Topology {
        Topology::new(
            self.sensor_positions.clone(),
            self.gateway_positions.clone(),
            wmsn_util::Rect::from_corners(Point::new(-1e9, -1e9), Point::new(1e9, 1e9)),
            self.range_m,
        )
    }

    /// Replace the host, keeping every other scenario field — the hook
    /// that lifts a freshly built (un-started) `SprScenario<World>`
    /// onto the sharded kernel:
    /// `s.map_world(|w| ShardedWorld::from_world(w, assignment, threads))`.
    pub fn map_world<H2>(self, f: impl FnOnce(H) -> H2) -> SprScenario<H2> {
        SprScenario {
            world: f(self.world),
            sensors: self.sensors,
            gateways: self.gateways,
            traffic: self.traffic,
            sensor_positions: self.sensor_positions,
            gateway_positions: self.gateway_positions,
            range_m: self.range_m,
        }
    }
}

/// A SecMLR scenario.
pub struct SecMlrScenario {
    /// The world.
    pub world: World,
    /// Sensor ids.
    pub sensors: Vec<NodeId>,
    /// Gateway ids.
    pub gateways: Vec<NodeId>,
    /// Feasible places.
    pub places: FeasiblePlaces,
    /// Movement schedule.
    pub schedule: MovementSchedule,
    /// Traffic parameters.
    pub traffic: TrafficParams,
    /// The deployment master key (kept for spawning verifying test rigs).
    pub master: Key128,
}

/// Build a SecMLR scenario: pairwise keys and μTESLA anchors are
/// pre-distributed; round-0 occupancy is part of deployment knowledge.
pub fn build_secmlr(
    field: &FieldParams,
    gw: &GatewayParams,
    traffic: TrafficParams,
) -> SecMlrScenario {
    let mut rng = SplitMix64::new(field.seed).split(0xB01D);
    let sensor_positions = generate_sensors(field, &mut rng);
    let (places, initial) = place_initial(field, gw, &sensor_positions, &mut rng);
    let mut master_bytes = [0u8; 16];
    SplitMix64::new(field.seed)
        .split(0x5EC0)
        .fill_bytes(&mut master_bytes);
    let master = Key128(master_bytes);
    let n = sensor_positions.len();
    let gateway_ids: Vec<NodeId> = (0..gw.m).map(|j| NodeId((n + j) as u32)).collect();
    let gateway_raw: Vec<u32> = gateway_ids.iter().map(|g| g.0).collect();

    let mut world = World::new(field.world_config());
    let sensors: Vec<NodeId> = sensor_positions
        .iter()
        .enumerate()
        .map(|(i, &pos)| {
            let keys = KeyStore::for_sensor(&master, i as u32, &gateway_raw);
            world.add_node(
                NodeConfig::sensor(pos, field.battery_j),
                SecMlrSensor::boxed(SecSensorConfig::default(), keys),
            )
        })
        .collect();
    let gateways: Vec<NodeId> = initial
        .iter()
        .zip(&gateway_ids)
        .map(|(&p, &gid)| {
            let id = world.add_node(
                NodeConfig::gateway(places.position(p)),
                SecMlrGateway::boxed(SecGatewayConfig::default(), &master, gid, p as u16),
            );
            assert_eq!(id, gid, "gateway id layout violated");
            id
        })
        .collect();
    // Deployment-time μTESLA anchoring and round-0 occupancy.
    let occupancy: Vec<(NodeId, u16)> = gateways
        .iter()
        .zip(initial.iter())
        .map(|(&g, &p)| (g, p as u16))
        .collect();
    for (&g, &_p) in gateways.iter().zip(initial.iter()) {
        let params = world
            .behavior_as::<SecMlrGateway>(g)
            .expect("gateway behaviour")
            .tesla_params();
        for &s in &sensors {
            world.with_behavior::<SecMlrSensor, _>(s, |b, _| {
                b.install_tesla(
                    g,
                    TeslaReceiver::new(params.0, params.1, params.2, params.3, params.4),
                );
            });
        }
    }
    for &s in &sensors {
        world.with_behavior::<SecMlrSensor, _>(s, |b, _| b.set_initial_occupancy(&occupancy));
    }
    let schedule = MovementSchedule::new(gw.movement.clone(), &places, initial, field.seed);
    SecMlrScenario {
        world,
        sensors,
        gateways,
        places,
        schedule,
        traffic,
        master,
    }
}

/// The full three-layer architecture of Fig. 1.
pub struct ThreeTierScenario {
    /// The world.
    pub world: World,
    /// Sensor ids.
    pub sensors: Vec<NodeId>,
    /// WMG ids (composite behaviour).
    pub wmgs: Vec<NodeId>,
    /// WMR ids.
    pub wmrs: Vec<NodeId>,
    /// Base-station id.
    pub base: NodeId,
    /// Place ids the WMGs were deployed at (index-aligned with `wmgs`).
    pub initial_places: Vec<usize>,
    /// Traffic parameters.
    pub traffic: TrafficParams,
}

/// Build the three-tier architecture: sensors + `gw.m` WMGs (uplinked) +
/// a `wmr_grid` of mesh routers + one base station at `base_pos`.
/// `mesh_range_m` sets the backbone radio range.
pub fn build_three_tier(
    field: &FieldParams,
    gw: &GatewayParams,
    traffic: TrafficParams,
    wmr_grid: (usize, usize),
    base_pos: Point,
    mesh_range_m: f64,
) -> ThreeTierScenario {
    let mut rng = SplitMix64::new(field.seed).split(0xB01D);
    let sensor_positions = generate_sensors(field, &mut rng);
    let (places, initial) = place_initial(field, gw, &sensor_positions, &mut rng);
    let mut cfg = field.world_config();
    cfg.mesh_phy.range_m = mesh_range_m;
    let mut world = World::new(cfg);
    let sensors: Vec<NodeId> = sensor_positions
        .iter()
        .map(|&pos| {
            world.add_node(
                NodeConfig::sensor(pos, field.battery_j),
                MlrSensor::boxed(MlrConfig::default()),
            )
        })
        .collect();
    // Base id comes after sensors + WMGs + WMRs.
    let base_id = NodeId((sensor_positions.len() + gw.m + wmr_grid.0 * wmr_grid.1) as u32);
    let wmgs: Vec<NodeId> = initial
        .iter()
        .map(|&p| {
            world.add_node(
                NodeConfig::gateway(places.position(p)),
                WmgBehavior::boxed(p as u16, Some(base_id)),
            )
        })
        .collect();
    let wmr_places = FeasiblePlaces::grid(field.field, wmr_grid.0, wmr_grid.1);
    let wmrs: Vec<NodeId> = wmr_places
        .places
        .iter()
        .map(|&pos| world.add_node(NodeConfig::mesh_router(pos), MeshNode::boxed()))
        .collect();
    let base = world.add_node(NodeConfig::base_station(base_pos), MeshNode::boxed());
    assert_eq!(base, base_id, "base id layout violated");
    ThreeTierScenario {
        world,
        sensors,
        wmgs,
        wmrs,
        base,
        initial_places: initial,
        traffic,
    }
}

/// A LEACH scenario (single sink).
pub struct LeachScenario {
    /// The world.
    pub world: World,
    /// Sensor ids.
    pub sensors: Vec<NodeId>,
    /// The sink.
    pub sink: NodeId,
    /// Traffic parameters.
    pub traffic: TrafficParams,
}

/// Build a LEACH scenario with the sink at `sink_pos`.
pub fn build_leach(
    field: &FieldParams,
    sink_pos: Point,
    p: f64,
    traffic: TrafficParams,
) -> LeachScenario {
    let mut rng = SplitMix64::new(field.seed).split(0xB01D);
    let sensor_positions = generate_sensors(field, &mut rng);
    let sink_id = NodeId(sensor_positions.len() as u32);
    let cfg = LeachConfig {
        p,
        payload_len: 24,
        sink_pos,
        sink: sink_id,
        max_boost_range: field.field.diagonal() + sink_pos.dist(field.field.center()) + 50.0,
    };
    let mut world = World::new(field.world_config());
    let sensors: Vec<NodeId> = sensor_positions
        .iter()
        .map(|&pos| {
            world.add_node(
                NodeConfig::sensor(pos, field.battery_j),
                LeachSensor::boxed(cfg),
            )
        })
        .collect();
    let sink = world.add_node(NodeConfig::gateway(sink_pos), LeachSink::boxed());
    assert_eq!(sink, sink_id);
    LeachScenario {
        world,
        sensors,
        sink,
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::*;

    #[test]
    fn mlr_builder_lays_out_ids_as_documented() {
        let field = FieldParams::default_uniform(30, 1);
        let s = build_mlr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
            0.0,
        );
        assert_eq!(s.sensors.len(), 30);
        assert_eq!(s.gateways.len(), 3);
        assert_eq!(s.sensors[0], NodeId(0));
        assert_eq!(s.gateways[0], NodeId(30));
        assert_eq!(s.world.node_count(), 33);
        // Distinct initial places.
        let set: std::collections::HashSet<_> = s.schedule.current().iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn spr_builder_matches_analytic_topology() {
        let field = FieldParams::default_uniform(40, 2);
        let s = build_spr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
        );
        let topo = s.topology();
        assert_eq!(topo.sensors.len(), 40);
        assert_eq!(topo.gateways.len(), 3);
        // The builder is deterministic per seed.
        let s2 = build_spr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
        );
        assert_eq!(s.sensor_positions, s2.sensor_positions);
        assert_eq!(s.gateway_positions, s2.gateway_positions);
    }

    #[test]
    fn secmlr_builder_anchors_every_sensor_for_every_gateway() {
        let field = FieldParams {
            require_connected: false, // 12 sensors at range 25 rarely connect
            ..FieldParams::default_uniform(12, 3)
        };
        let mut s = build_secmlr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
        );
        // Every sensor can immediately select among 3 occupied places.
        for &sensor in &s.sensors {
            let b = s.world.behavior_as::<SecMlrSensor>(sensor).unwrap();
            assert_eq!(b.occupied_gateways().len(), 3);
        }
        let _ = &mut s.schedule;
    }

    #[test]
    fn three_tier_builder_wires_the_uplink() {
        let field = FieldParams::default_uniform(20, 4);
        let s = build_three_tier(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
            (2, 2),
            Point::new(50.0, 160.0),
            120.0,
        );
        assert_eq!(s.wmgs.len(), 3);
        assert_eq!(s.wmrs.len(), 4);
        assert_eq!(s.world.node_count(), 20 + 3 + 4 + 1);
        let wmg = s.world.behavior_as::<WmgBehavior>(s.wmgs[0]).unwrap();
        assert_eq!(wmg.uplink, Some(s.base));
    }

    #[test]
    fn leach_builder_configures_the_sink() {
        let field = FieldParams::default_uniform(25, 5);
        let s = build_leach(
            &field,
            Point::new(50.0, 130.0),
            0.1,
            TrafficParams::default(),
        );
        assert_eq!(s.sensors.len(), 25);
        assert_eq!(s.sink, NodeId(25));
    }
}
