//! The self-healing loop: drain monitor alerts, apply policy actions.
//!
//! `wmsn-health` deliberately cannot see the routing stack, so its
//! [`HealthAction`]s are plain values; this module is the interpreter
//! that applies them to a running [`World`] — the piece that turns
//! E6/E8's *scripted* recoveries into monitor-driven ones. Call
//! [`drain_actions`] between rounds (or on any cadence), then hand the
//! actions to the applier matching the deployed stack.

use wmsn_health::{HealthAction, HealthMonitor, HealthPolicy};
use wmsn_routing::mlr::{MlrGateway, MlrSensor};
use wmsn_secure::SecMlrSensor;
use wmsn_sim::World;
use wmsn_trace::RingSink;
use wmsn_util::NodeId;

/// Finalize the installed [`HealthMonitor`]'s current window, drain the
/// alerts raised since the last drain, and map them through `policy`.
/// Returns an empty list when no monitor is installed — the loop is a
/// no-op on unmonitored worlds.
///
/// Works in both monitor placements: the monitor installed directly as
/// the world's sink (inline mode), or sitting downstream of a
/// [`RingSink`] (ring pipeline). In the ring case the flush barrier
/// runs first, so the monitor has observed every event emitted up to
/// this call before its window is evaluated — the exact state the
/// inline monitor would hold at the same sim time.
pub fn drain_actions(world: &mut World, policy: &HealthPolicy) -> Vec<HealthAction> {
    // Evaluate the partial window too: a gateway that died mid-round
    // should be actionable at the round boundary, not one window later.
    let alerts = if let Some(monitor) = world.trace_sink_as_mut::<HealthMonitor>() {
        monitor.finalize();
        monitor.take_new_alerts()
    } else if let Some(ring) = world.trace_sink_as_mut::<RingSink>() {
        ring.barrier();
        let Some(alerts) = ring.with_sink_mut::<HealthMonitor, _>(|m| {
            m.finalize();
            m.take_new_alerts()
        }) else {
            return Vec::new();
        };
        alerts
    } else {
        return Vec::new();
    };
    alerts.iter().flat_map(|a| policy.actions_for(a)).collect()
}

/// Apply actions to a plain-MLR deployment. `sensors` and `gateways`
/// are the deployment's member lists (actions touching other node ids
/// are ignored). Returns the number of actions applied.
pub fn apply_to_mlr(
    world: &mut World,
    sensors: &[NodeId],
    gateways: &[NodeId],
    actions: &[HealthAction],
) -> usize {
    let mut applied = 0;
    for &action in actions {
        match action {
            // MLR has no blacklist; both gateway actions map to the
            // §4.2 redirect — purge the gateway from every sensor.
            HealthAction::RemoveGateway(g) | HealthAction::BlacklistGateway(g) => {
                let gid = NodeId(g as u32);
                for &s in sensors {
                    world.with_behavior::<MlrSensor, _>(s, |b, _| b.remove_gateway(gid));
                }
                applied += 1;
            }
            HealthAction::QuarantineNode(n) => {
                world.sleep(NodeId(n as u32));
                applied += 1;
            }
            // §4.3: refresh every gateway's load advertisement so the
            // load-aware α term can steer traffic off the hot one.
            HealthAction::RebalanceLoad(_) => {
                for &g in gateways {
                    world.with_behavior::<MlrGateway, _>(g, |b, ctx| b.announce_load(ctx));
                }
                applied += 1;
            }
        }
    }
    applied
}

/// Apply actions to a SecMLR deployment: gateway actions use the secure
/// stack's blacklist (replies naming the gateway are rejected on
/// arrival, stronger than table removal).
pub fn apply_to_secmlr(world: &mut World, sensors: &[NodeId], actions: &[HealthAction]) -> usize {
    let mut applied = 0;
    for &action in actions {
        match action {
            HealthAction::RemoveGateway(g) | HealthAction::BlacklistGateway(g) => {
                let gid = NodeId(g as u32);
                for &s in sensors {
                    world.with_behavior::<SecMlrSensor, _>(s, |b, _| b.blacklist_gateway(gid));
                }
                applied += 1;
            }
            HealthAction::QuarantineNode(n) => {
                world.sleep(NodeId(n as u32));
                applied += 1;
            }
            HealthAction::RebalanceLoad(_) => {}
        }
    }
    applied
}
