//! Round drivers: the experiment-side orchestration of §5.1's round
//! structure ("the period during which all gateways are static").
//!
//! A driver owns a scenario and, per round: advances the movement
//! schedule, repositions moved gateways and triggers their announcements,
//! lets the network settle, injects application traffic, and snapshots
//! the metrics delta. Lifetime experiments loop rounds until the first
//! sensor dies (the paper's lifetime definition).

use crate::builder::{MlrScenario, SecMlrScenario, SprScenario};
use wmsn_routing::leach::LeachSensor;
use wmsn_routing::mlr::{MlrGateway, MlrSensor};
use wmsn_routing::spr::{SprGateway, SprSensor};
use wmsn_secure::{SecMlrGateway, SecMlrSensor};
use wmsn_sim::{Metrics, SimHost, SimTime, World};
use wmsn_util::{NodeId, SplitMix64};

/// Metrics delta for one round.
#[derive(Clone, Copy, Debug)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: u32,
    /// Messages originated this round.
    pub originated: u64,
    /// Unique messages delivered this round (duplicates count once).
    pub delivered: u64,
    /// Control frames sent this round.
    pub control_frames: u64,
    /// Data frames sent this round.
    pub data_frames: u64,
    /// Security frames sent this round.
    pub security_frames: u64,
    /// Gateways that moved at the round boundary.
    pub moved_gateways: usize,
    /// Whether the first sensor death happened by the end of this round.
    pub any_death: bool,
}

impl RoundReport {
    /// Per-round delivery ratio.
    pub fn delivery_ratio(&self) -> f64 {
        if self.originated == 0 {
            1.0
        } else {
            self.delivered as f64 / self.originated as f64
        }
    }
}

/// Outcome of a lifetime loop.
#[derive(Clone, Copy, Debug)]
pub struct LifetimeResult {
    /// Completed rounds before the first sensor death (`None` if the
    /// round budget ran out first).
    pub lifetime_rounds: Option<u32>,
    /// Rounds actually executed.
    pub rounds_run: u32,
    /// Simulated time of the first death.
    pub death_time: Option<SimTime>,
}

fn snapshot(m: &Metrics) -> (u64, u64, u64, u64, u64) {
    (
        m.originated,
        m.unique_deliveries(),
        m.sent_control,
        m.sent_data,
        m.sent_security,
    )
}

fn delta_report(
    round: u32,
    before: (u64, u64, u64, u64, u64),
    m: &Metrics,
    moved: usize,
) -> RoundReport {
    let after = snapshot(m);
    RoundReport {
        round,
        originated: after.0 - before.0,
        delivered: after.1 - before.1,
        control_frames: after.2 - before.2,
        data_frames: after.3 - before.3,
        security_frames: after.4 - before.4,
        moved_gateways: moved,
        any_death: m.first_death.is_some(),
    }
}

/// Inject one round of traffic: each reporting sensor originates
/// `msgs` messages. Sensors are staggered by a small per-node offset —
/// real deployments do not sample synchronously, and under the collision
/// model a synchronized burst would destroy itself.
fn inject_traffic<H, F>(
    world: &mut H,
    sensors: &[NodeId],
    msgs: u32,
    fraction: f64,
    gap_us: SimTime,
    rng: &mut SplitMix64,
    mut originate: F,
) where
    H: SimHost,
    F: FnMut(&mut H, NodeId),
{
    let stagger = (gap_us / (sensors.len() as u64 + 1)).clamp(1, 5_000);
    for _ in 0..msgs {
        let mut used = 0;
        for &s in sensors {
            if !world.node(s).alive {
                continue;
            }
            if fraction >= 1.0 || rng.chance(fraction) {
                originate(world, s);
                world.run_for(stagger);
                used += stagger;
            }
        }
        world.run_for(gap_us.saturating_sub(used));
    }
}

/// Driver for MLR scenarios.
pub struct MlrDriver {
    /// The scenario being driven.
    pub scenario: MlrScenario,
    round: u32,
    /// Ablation: clear all sensor tables at each round boundary,
    /// emulating a naive table-driven protocol that re-discovers every
    /// round (the E5 baseline).
    pub reset_tables: bool,
    traffic_rng: SplitMix64,
}

impl MlrDriver {
    /// Wrap a scenario.
    pub fn new(scenario: MlrScenario) -> Self {
        let traffic_rng = SplitMix64::new(0xF00D ^ scenario.traffic.round_duration_us);
        MlrDriver {
            scenario,
            round: 0,
            reset_tables: false,
            traffic_rng,
        }
    }

    /// Enable the table-reset ablation.
    pub fn with_table_reset(mut self) -> Self {
        self.reset_tables = true;
        self
    }

    /// Rounds completed so far.
    pub fn rounds_run(&self) -> u32 {
        self.round
    }

    /// Execute one round.
    pub fn run_round(&mut self) -> RoundReport {
        let s = &mut self.scenario;
        let before = snapshot(s.world.metrics());
        let placement = s.schedule.next_round();
        let round = self.round;
        for &g in &placement.moved {
            let place = placement.occupied[g];
            let node = s.gateways[g];
            s.world.set_position(node, s.places.position(place));
            s.world.with_behavior::<MlrGateway, _>(node, |b, ctx| {
                b.set_place(ctx, place as u16, round);
            });
            // Composite WMGs (three-tier) hold the gateway inside.
            s.world
                .with_behavior::<crate::wmg::WmgBehavior, _>(node, |b, ctx| {
                    b.gateway.set_place(ctx, place as u16, round);
                });
        }
        if self.reset_tables {
            for &sensor in &s.sensors {
                s.world
                    .with_behavior::<MlrSensor, _>(sensor, |b, _| b.table.clear());
            }
        }
        s.world.run_for(500_000); // announcements settle
        let msgs = s.traffic.msgs_per_sensor_per_round;
        let fraction = s.traffic.reporting_fraction;
        let gap = s.traffic.round_duration_us / (msgs as u64 + 1).max(2);
        inject_traffic(
            &mut s.world,
            &s.sensors,
            msgs,
            fraction,
            gap,
            &mut self.traffic_rng,
            |w, id| {
                w.with_behavior::<MlrSensor, _>(id, |b, ctx| b.originate(ctx));
            },
        );
        s.world.run_for(gap);
        self.round += 1;
        let at = s.world.now();
        s.world.metrics_mut().snapshot_round(round, at);
        delta_report(round, before, s.world.metrics(), placement.moved.len())
    }

    /// Run `n` rounds.
    pub fn run_rounds(&mut self, n: u32) -> Vec<RoundReport> {
        (0..n).map(|_| self.run_round()).collect()
    }

    /// Run until the first sensor dies or `max_rounds` elapse.
    pub fn run_until_first_death(&mut self, max_rounds: u32) -> LifetimeResult {
        for _ in 0..max_rounds {
            let report = self.run_round();
            if report.any_death {
                return LifetimeResult {
                    lifetime_rounds: Some(report.round),
                    rounds_run: self.round,
                    death_time: self.scenario.world.metrics().first_death,
                };
            }
        }
        LifetimeResult {
            lifetime_rounds: None,
            rounds_run: self.round,
            death_time: None,
        }
    }
}

/// Driver for SPR scenarios (static gateways; per-round table reset is
/// the protocol's own semantics, §5.2).
///
/// Generic over the simulation host: `SprDriver<World>` (the default)
/// drives the bit-exact reference, `SprDriver<ShardedWorld>` the
/// parallel kernel — same rounds, same traffic schedule, same RNG
/// streams.
pub struct SprDriver<H: SimHost = World> {
    /// The scenario being driven.
    pub scenario: SprScenario<H>,
    round: u32,
    /// Reset tables each round (SPR's defined behaviour; disable to
    /// measure the pure on-demand cache steady state).
    pub reset_each_round: bool,
    traffic_rng: SplitMix64,
}

impl<H: SimHost> SprDriver<H> {
    /// Wrap a scenario.
    pub fn new(scenario: SprScenario<H>) -> Self {
        let traffic_rng = SplitMix64::new(0xF00E ^ scenario.traffic.round_duration_us);
        SprDriver {
            scenario,
            round: 0,
            reset_each_round: true,
            traffic_rng,
        }
    }

    /// Execute one round.
    pub fn run_round(&mut self) -> RoundReport {
        let s = &mut self.scenario;
        let before = snapshot(s.world.metrics());
        if self.reset_each_round && self.round > 0 {
            for &sensor in &s.sensors {
                s.world
                    .with_behavior::<SprSensor, _>(sensor, |b, _| b.reset_round());
            }
            for &g in &s.gateways {
                s.world
                    .with_behavior::<SprGateway, _>(g, |b, _| b.reset_round());
            }
        }
        let msgs = s.traffic.msgs_per_sensor_per_round;
        let fraction = s.traffic.reporting_fraction;
        let gap = s.traffic.round_duration_us / (msgs as u64 + 1).max(2);
        inject_traffic(
            &mut s.world,
            &s.sensors,
            msgs,
            fraction,
            gap,
            &mut self.traffic_rng,
            |w, id| {
                w.with_behavior::<SprSensor, _>(id, |b, ctx| b.originate(ctx));
            },
        );
        s.world.run_for(gap);
        let round = self.round;
        self.round += 1;
        let at = s.world.now();
        s.world.snapshot_round(round, at);
        delta_report(round, before, s.world.metrics(), 0)
    }

    /// Run `n` rounds.
    pub fn run_rounds(&mut self, n: u32) -> Vec<RoundReport> {
        (0..n).map(|_| self.run_round()).collect()
    }

    /// Run until the first sensor dies or `max_rounds` elapse.
    pub fn run_until_first_death(&mut self, max_rounds: u32) -> LifetimeResult {
        for _ in 0..max_rounds {
            let report = self.run_round();
            if report.any_death {
                return LifetimeResult {
                    lifetime_rounds: Some(report.round),
                    rounds_run: self.round,
                    death_time: self.scenario.world.metrics().first_death,
                };
            }
        }
        LifetimeResult {
            lifetime_rounds: None,
            rounds_run: self.round,
            death_time: None,
        }
    }
}

/// Driver for SecMLR scenarios.
pub struct SecMlrDriver {
    /// The scenario being driven.
    pub scenario: SecMlrScenario,
    round: u32,
    traffic_rng: SplitMix64,
}

impl SecMlrDriver {
    /// Wrap a scenario.
    pub fn new(scenario: SecMlrScenario) -> Self {
        let traffic_rng = SplitMix64::new(0xF00F ^ scenario.traffic.round_duration_us);
        SecMlrDriver {
            scenario,
            round: 0,
            traffic_rng,
        }
    }

    /// Execute one round. Settling covers the μTESLA disclosure delay so
    /// moved-gateway announcements authenticate before traffic flows.
    pub fn run_round(&mut self) -> RoundReport {
        let s = &mut self.scenario;
        let before = snapshot(s.world.metrics());
        let placement = s.schedule.next_round();
        let round = self.round;
        // Round 0 occupancy was pre-loaded at deployment; later rounds
        // announce moves over the air.
        if round > 0 {
            for &g in &placement.moved {
                let place = placement.occupied[g];
                let node = s.gateways[g];
                s.world.set_position(node, s.places.position(place));
                s.world.with_behavior::<SecMlrGateway, _>(node, |b, ctx| {
                    b.set_place(ctx, place as u16, round);
                });
            }
            if !placement.moved.is_empty() {
                // μTESLA: interval 250 ms × (delay 2 + 1) plus slack.
                s.world.run_for(1_000_000);
            }
        }
        s.world.run_for(200_000);
        let msgs = s.traffic.msgs_per_sensor_per_round;
        let fraction = s.traffic.reporting_fraction;
        let gap = s.traffic.round_duration_us / (msgs as u64 + 1).max(2);
        inject_traffic(
            &mut s.world,
            &s.sensors,
            msgs,
            fraction,
            gap,
            &mut self.traffic_rng,
            |w, id| {
                w.with_behavior::<SecMlrSensor, _>(id, |b, ctx| b.originate(ctx));
            },
        );
        s.world.run_for(gap);
        self.round += 1;
        let at = s.world.now();
        s.world.metrics_mut().snapshot_round(round, at);
        delta_report(round, before, s.world.metrics(), placement.moved.len())
    }

    /// Run `n` rounds.
    pub fn run_rounds(&mut self, n: u32) -> Vec<RoundReport> {
        (0..n).map(|_| self.run_round()).collect()
    }
}

/// Driver for LEACH scenarios.
pub struct LeachDriver {
    /// The scenario being driven.
    pub scenario: crate::builder::LeachScenario,
    round: u32,
}

impl LeachDriver {
    /// Wrap a scenario.
    pub fn new(scenario: crate::builder::LeachScenario) -> Self {
        LeachDriver { scenario, round: 0 }
    }

    /// Execute one LEACH round (elect → advertise → report → flush).
    /// `kill_heads_after_join` implements the E8 fault injection: heads
    /// die right after members joined them.
    pub fn run_round(&mut self, kill_heads_after_join: bool) -> RoundReport {
        let s = &mut self.scenario;
        let before = snapshot(s.world.metrics());
        let round = self.round;
        for &id in &s.sensors {
            s.world.with_behavior::<LeachSensor, _>(id, |b, ctx| {
                b.start_round(ctx, round);
            });
        }
        s.world.run_for(200_000);
        if kill_heads_after_join {
            let heads: Vec<NodeId> = s
                .sensors
                .iter()
                .copied()
                .filter(|&id| {
                    s.world
                        .behavior_as::<LeachSensor>(id)
                        .map(|b| b.is_head)
                        .unwrap_or(false)
                })
                .collect();
            for h in heads {
                s.world.kill(h);
            }
        }
        for &id in &s.sensors {
            s.world
                .with_behavior::<LeachSensor, _>(id, |b, ctx| b.report(ctx));
        }
        s.world.run_for(200_000);
        for &id in &s.sensors {
            s.world
                .with_behavior::<LeachSensor, _>(id, |b, ctx| b.flush(ctx));
        }
        s.world.run_for(200_000);
        self.round += 1;
        let at = s.world.now();
        s.world.metrics_mut().snapshot_round(round, at);
        delta_report(round, before, s.world.metrics(), 0)
    }

    /// Run until the first sensor dies or `max_rounds` elapse.
    pub fn run_until_first_death(&mut self, max_rounds: u32) -> LifetimeResult {
        for _ in 0..max_rounds {
            let report = self.run_round(false);
            if report.any_death {
                return LifetimeResult {
                    lifetime_rounds: Some(report.round),
                    rounds_run: self.round,
                    death_time: self.scenario.world.metrics().first_death,
                };
            }
        }
        LifetimeResult {
            lifetime_rounds: None,
            rounds_run: self.round,
            death_time: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::params::*;

    fn small_field(seed: u64) -> FieldParams {
        FieldParams {
            battery_j: 1.0,
            ..FieldParams::default_uniform(40, seed)
        }
    }

    #[test]
    fn mlr_round_delivers_most_traffic() {
        let s = build_mlr(
            &small_field(1),
            &GatewayParams::default_three(),
            TrafficParams::default(),
            0.0,
        );
        let mut d = MlrDriver::new(s);
        let r = d.run_round();
        assert_eq!(r.originated, 40);
        assert!(
            r.delivery_ratio() > 0.9,
            "round 0 ratio {} ({} delivered)",
            r.delivery_ratio(),
            r.delivered
        );
        assert_eq!(r.moved_gateways, 3, "round 0 announces everyone");
    }

    #[test]
    fn mlr_control_traffic_collapses_after_round_zero() {
        let s = build_mlr(
            &small_field(2),
            &GatewayParams::default_three(), // static
            TrafficParams::default(),
            0.0,
        );
        let mut d = MlrDriver::new(s);
        let r0 = d.run_round();
        let r1 = d.run_round();
        let r2 = d.run_round();
        assert!(
            r1.control_frames < r0.control_frames / 5,
            "steady state should need almost no control traffic: r0={} r1={}",
            r0.control_frames,
            r1.control_frames
        );
        assert!(r2.delivery_ratio() > 0.9);
    }

    #[test]
    fn table_reset_ablation_pays_discovery_every_round() {
        let build = || {
            build_mlr(
                &small_field(3),
                &GatewayParams::default_three(),
                TrafficParams::default(),
                0.0,
            )
        };
        let mut incremental = MlrDriver::new(build());
        let mut reset = MlrDriver::new(build()).with_table_reset();
        let inc: u64 = incremental
            .run_rounds(4)
            .iter()
            .skip(1)
            .map(|r| r.control_frames)
            .sum();
        let rst: u64 = reset
            .run_rounds(4)
            .iter()
            .skip(1)
            .map(|r| r.control_frames)
            .sum();
        assert!(
            rst > inc.max(1) * 5,
            "reset ablation must flood every round: incremental={inc} reset={rst}"
        );
    }

    #[test]
    fn mlr_rotating_gateways_keep_delivering() {
        // Rotation visits new places for several rounds; discovery floods
        // are energy-hungry, so give the field headroom.
        let field = FieldParams {
            battery_j: 10.0,
            ..small_field(4)
        };
        let s = build_mlr(
            &field,
            &GatewayParams::rotating(3, 3, 3),
            TrafficParams::default(),
            0.0,
        );
        let mut d = MlrDriver::new(s);
        let reports = d.run_rounds(5);
        for r in &reports[1..] {
            assert!(
                r.delivery_ratio() > 0.85,
                "round {} ratio {}",
                r.round,
                r.delivery_ratio()
            );
            assert!(r.moved_gateways <= 1, "round-robin moves one gateway");
        }
    }

    #[test]
    fn spr_driver_resets_tables_and_still_delivers() {
        let s = build_spr(
            &small_field(5),
            &GatewayParams::default_three(),
            TrafficParams::default(),
        );
        let mut d = SprDriver::new(s);
        let r0 = d.run_round();
        let r1 = d.run_round();
        assert!(r0.delivery_ratio() > 0.9);
        assert!(r1.delivery_ratio() > 0.9);
        // Reset ⇒ discovery traffic every round.
        assert!(r1.control_frames > 0);
    }

    #[test]
    fn lifetime_loop_terminates_on_first_death() {
        // Tiny batteries: a few rounds only.
        let field = FieldParams {
            battery_j: 0.02, // 20 packets worth
            ..FieldParams::default_uniform(30, 6)
        };
        let s = build_mlr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
            0.0,
        );
        let mut d = MlrDriver::new(s);
        let lt = d.run_until_first_death(200);
        assert!(lt.lifetime_rounds.is_some(), "somebody must die");
        assert!(lt.lifetime_rounds.unwrap() < 60);
        assert!(lt.death_time.is_some());
    }

    #[test]
    fn secmlr_driver_survives_gateway_movement() {
        // Secure discovery re-runs after every move (routes are
        // gateway-keyed); give batteries headroom for the floods.
        let field = FieldParams {
            battery_j: 10.0,
            ..small_field(7)
        };
        let s = build_secmlr(
            &field,
            &GatewayParams::rotating(2, 3, 2),
            TrafficParams::default(),
        );
        let mut d = SecMlrDriver::new(s);
        let reports = d.run_rounds(3);
        assert!(
            reports[0].delivery_ratio() > 0.9,
            "round 0: {:?}",
            reports[0]
        );
        for r in &reports[1..] {
            assert!(
                r.delivery_ratio() > 0.8,
                "round {} ratio {} after a secure move",
                r.round,
                r.delivery_ratio()
            );
        }
        // μTESLA key disclosures happened.
        let m = d.scenario.world.metrics();
        assert!(m.sent_security > 0);
    }

    #[test]
    fn leach_driver_round_and_fault_injection() {
        let field = small_field(8);
        let s = build_leach(
            &field,
            wmsn_util::Point::new(50.0, 140.0),
            0.15,
            TrafficParams::default(),
        );
        let mut d = LeachDriver::new(s);
        let healthy = d.run_round(false);
        assert!(healthy.delivery_ratio() > 0.95, "{:?}", healthy);
        let faulty = d.run_round(true);
        assert!(
            faulty.delivery_ratio() < healthy.delivery_ratio(),
            "killing heads must hurt: {} vs {}",
            faulty.delivery_ratio(),
            healthy.delivery_ratio()
        );
    }
}
