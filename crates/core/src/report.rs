//! Rendering experiment results.
//!
//! Every experiment returns `Vec<ReportRow>`; these helpers print them as
//! an aligned terminal table (what the examples and benches show) and as
//! JSON (what gets archived next to bench output).

use wmsn_util::stats::ReportRow;

/// Print rows as an aligned table with a header.
pub fn print_rows(title: &str, rows: &[ReportRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<5} {:<32} {:<28} {:>12}",
        "exp", "config", "metric", "value"
    );
    println!("{}", "-".repeat(80));
    for row in rows {
        println!("{row}");
    }
}

/// Serialise rows to pretty JSON.
pub fn rows_to_json(rows: &[ReportRow]) -> String {
    serde_json::to_string_pretty(rows).expect("ReportRow serialises")
}

/// Find the value of the first row matching `config` and `metric`
/// substrings (test/assertion helper).
pub fn find_value(rows: &[ReportRow], config: &str, metric: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.config.contains(config) && r.metric.contains(metric))
        .map(|r| r.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ReportRow> {
        vec![
            ReportRow::new("E1", "n=100 m=1", "mean_hops", 7.5),
            ReportRow::new("E1", "n=100 m=3", "mean_hops", 2.5),
        ]
    }

    #[test]
    fn json_roundtrips_fields() {
        let json = rows_to_json(&rows());
        assert!(json.contains("mean_hops"));
        assert!(json.contains("7.5"));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 2);
        assert_eq!(parsed[1]["value"], 2.5);
    }

    #[test]
    fn find_value_matches_substrings() {
        let r = rows();
        assert_eq!(find_value(&r, "m=3", "hops"), Some(2.5));
        assert_eq!(find_value(&r, "m=9", "hops"), None);
    }
}
