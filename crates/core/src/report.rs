//! Rendering experiment results.
//!
//! Every experiment returns `Vec<ReportRow>`; these helpers emit them as
//! machine-parseable structured records (one compact JSON object per
//! line, the same flat shape the trace layer uses — see
//! [`wmsn_trace::record_line`]) and as pretty JSON (what gets archived
//! next to bench output).

use wmsn_trace::{log_record, record_line};
use wmsn_util::json::Json;
use wmsn_util::stats::ReportRow;

/// Build the structured record line for a report header.
pub fn title_record(title: &str, rows: usize) -> String {
    record_line(
        "report",
        vec![
            ("title", Json::from(title.to_string())),
            ("rows", Json::from(rows as u64)),
        ],
    )
}

/// Build the structured record line for one result row:
/// `{"record":"row","experiment":...,"config":...,"metric":...,"value":...}`.
pub fn row_record(row: &ReportRow) -> String {
    record_line(
        "row",
        vec![
            ("experiment", Json::from(row.experiment.clone())),
            ("config", Json::from(row.config.clone())),
            ("metric", Json::from(row.metric.clone())),
            ("value", Json::Num(row.value)),
        ],
    )
}

/// Print rows as structured records: a `report` header line followed by
/// one `row` line per result. Every line parses with
/// [`wmsn_trace::parse_line`].
pub fn print_rows(title: &str, rows: &[ReportRow]) {
    log_record(
        "report",
        vec![
            ("title", Json::from(title.to_string())),
            ("rows", Json::from(rows.len() as u64)),
        ],
    );
    for row in rows {
        println!("{}", row_record(row));
    }
}

/// Serialise rows to pretty JSON.
pub fn rows_to_json(rows: &[ReportRow]) -> String {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("experiment", Json::from(r.experiment.clone())),
                    ("config", Json::from(r.config.clone())),
                    ("metric", Json::from(r.metric.clone())),
                    ("value", Json::Num(r.value)),
                ])
            })
            .collect(),
    )
    .to_string_pretty()
}

/// Find the value of the first row matching `config` and `metric`
/// substrings (test/assertion helper).
pub fn find_value(rows: &[ReportRow], config: &str, metric: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.config.contains(config) && r.metric.contains(metric))
        .map(|r| r.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_trace::{parse_line, Value};

    fn rows() -> Vec<ReportRow> {
        vec![
            ReportRow::new("E1", "n=100 m=1", "mean_hops", 7.5),
            ReportRow::new("E1", "n=100 m=3", "mean_hops", 2.5),
        ]
    }

    #[test]
    fn json_carries_all_fields() {
        let json = rows_to_json(&rows());
        assert!(json.contains("\"metric\": \"mean_hops\""), "{json}");
        assert!(json.contains("\"value\": 7.5"), "{json}");
        assert!(json.contains("\"value\": 2.5"), "{json}");
        assert!(json.contains("\"config\": \"n=100 m=3\""), "{json}");
        // Two array elements: one object per row.
        assert_eq!(json.matches("\"experiment\": \"E1\"").count(), 2);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    }

    #[test]
    fn find_value_matches_substrings() {
        let r = rows();
        assert_eq!(find_value(&r, "m=3", "hops"), Some(2.5));
        assert_eq!(find_value(&r, "m=9", "hops"), None);
    }

    #[test]
    fn row_records_are_machine_parseable() {
        let r = rows();
        let line = row_record(&r[0]);
        assert_eq!(
            line,
            "{\"record\":\"row\",\"experiment\":\"E1\",\"config\":\"n=100 m=1\",\
             \"metric\":\"mean_hops\",\"value\":7.5}"
        );
        let rec = parse_line(&line).expect("row record must re-parse");
        assert!(matches!(
            wmsn_trace::parse::get(&rec, "value"),
            Some(Value::Num(v)) if *v == 7.5
        ));
        let hdr = parse_line(&title_record("E1 hop count", r.len())).unwrap();
        assert!(matches!(
            wmsn_trace::parse::get(&hdr, "rows"),
            Some(Value::Num(v)) if *v == 2.0
        ));
    }
}
