//! Rendering experiment results.
//!
//! Every experiment returns `Vec<ReportRow>`; these helpers print them as
//! an aligned terminal table (what the examples and benches show) and as
//! JSON (what gets archived next to bench output).

use wmsn_util::json::Json;
use wmsn_util::stats::ReportRow;

/// Print rows as an aligned table with a header.
pub fn print_rows(title: &str, rows: &[ReportRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<5} {:<32} {:<28} {:>12}",
        "exp", "config", "metric", "value"
    );
    println!("{}", "-".repeat(80));
    for row in rows {
        println!("{row}");
    }
}

/// Serialise rows to pretty JSON.
pub fn rows_to_json(rows: &[ReportRow]) -> String {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("experiment", Json::from(r.experiment.clone())),
                    ("config", Json::from(r.config.clone())),
                    ("metric", Json::from(r.metric.clone())),
                    ("value", Json::Num(r.value)),
                ])
            })
            .collect(),
    )
    .to_string_pretty()
}

/// Find the value of the first row matching `config` and `metric`
/// substrings (test/assertion helper).
pub fn find_value(rows: &[ReportRow], config: &str, metric: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.config.contains(config) && r.metric.contains(metric))
        .map(|r| r.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ReportRow> {
        vec![
            ReportRow::new("E1", "n=100 m=1", "mean_hops", 7.5),
            ReportRow::new("E1", "n=100 m=3", "mean_hops", 2.5),
        ]
    }

    #[test]
    fn json_carries_all_fields() {
        let json = rows_to_json(&rows());
        assert!(json.contains("\"metric\": \"mean_hops\""), "{json}");
        assert!(json.contains("\"value\": 7.5"), "{json}");
        assert!(json.contains("\"value\": 2.5"), "{json}");
        assert!(json.contains("\"config\": \"n=100 m=3\""), "{json}");
        // Two array elements: one object per row.
        assert_eq!(json.matches("\"experiment\": \"E1\"").count(), 2);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    }

    #[test]
    fn find_value_matches_substrings() {
        let r = rows();
        assert_eq!(find_value(&r, "m=3", "hops"), Some(2.5));
        assert_eq!(find_value(&r, "m=9", "hops"), None);
    }
}
