//! Experiment runners E1–E12: one function per paper artefact or
//! quantified claim (see DESIGN.md's experiment index and EXPERIMENTS.md
//! for paper-vs-measured records).
//!
//! Runners are deterministic given their seed, return
//! [`ReportRow`]s, and are shared between the criterion benches and the
//! examples. Parameterised sizes let benches scale runs up or down.

use crate::builder::{
    build_leach, build_mlr, build_secmlr, build_spr, build_spr_three_tier, build_three_tier,
    SprScenario,
};
use crate::drivers::{LeachDriver, MlrDriver, SecMlrDriver, SprDriver};
use crate::params::{FieldParams, GatewayParams, ParallelConfig, TrafficParams};
use wmsn_attacks::announcer::{AnnounceTarget, FalseAnnouncer};
use wmsn_attacks::sinkhole::TargetProtocol;
use wmsn_attacks::{wormhole_pair, Replayer, SelectiveForwarder, Sinkhole};
use wmsn_routing::mesh::MeshNode;
use wmsn_routing::mlr::{MlrConfig, MlrGateway, MlrSensor};
use wmsn_routing::optimal_lifetime_rounds;

use wmsn_routing::spr::{SprGateway, SprSensor};
use wmsn_secure::{SecMlrGateway, SecMlrSensor};
use wmsn_sim::{NodeConfig, PacketKind, ShardedWorld, SimHost, World};
use wmsn_topology::connectivity::HopField;
use wmsn_topology::paper::{
    fig2_single_sink, fig2_three_gateways, table1_field, table1_topology, FIG2_NAMED,
    FIG2_SINGLE_SINK_HOPS, FIG2_THREE_GATEWAY_HOPS, PAPER_RANGE, TABLE1_HOPS, TABLE1_ROUNDS,
    TABLE1_SELECTED,
};
use wmsn_topology::places::FeasiblePlaces;
use wmsn_topology::strip_shards;
use wmsn_topology::{placement, Deployment, Topology};
use wmsn_util::stats::ReportRow;
use wmsn_util::{NodeId, Point, Rect, SplitMix64};

// ---------------------------------------------------------------- E1 --

/// E1 (Fig. 2): hop counts with one sink vs three gateways, on the
/// paper's exact topology — asserted to match the paper verbatim — plus
/// random fields showing the same collapse.
pub fn e1_fig2() -> Vec<ReportRow> {
    let mut rows = Vec::new();
    let single = HopField::compute(&fig2_single_sink());
    let multi = HopField::compute(&fig2_three_gateways());
    for (k, &s) in FIG2_NAMED.iter().enumerate() {
        rows.push(ReportRow::new(
            "E1",
            format!("fig2a S{}", k + 1),
            "hops_paper",
            f64::from(FIG2_SINGLE_SINK_HOPS[k]),
        ));
        rows.push(ReportRow::new(
            "E1",
            format!("fig2a S{}", k + 1),
            "hops_measured",
            f64::from(single.sensor_hops(s)),
        ));
        rows.push(ReportRow::new(
            "E1",
            format!("fig2b S{}", k + 1),
            "hops_paper",
            f64::from(FIG2_THREE_GATEWAY_HOPS[k]),
        ));
        rows.push(ReportRow::new(
            "E1",
            format!("fig2b S{}", k + 1),
            "hops_measured",
            f64::from(multi.sensor_hops(s)),
        ));
    }
    rows
}

/// E1 on random fields: mean sensor hops for `m ∈ {1, 3}` gateways.
pub fn e1_random_fields(ns: &[usize], seed: u64) -> Vec<ReportRow> {
    let mut rows = Vec::new();
    for &n in ns {
        for m in [1usize, 3] {
            // A 200 m field at 20 m range: deep enough for the single
            // sink's hop counts to hurt (Fig. 2's point).
            let field = FieldParams {
                field: Rect::field(200.0, 200.0),
                range_m: 20.0,
                ..FieldParams::default_uniform(n, seed)
            };
            let mut rng = SplitMix64::new(seed).split(0xE1);
            // Redraw until connected: a disconnected draw would bias the
            // mean (unreachable sensors are excluded from it).
            let sensors = loop {
                let pts = field.deployment.generate(field.field, &mut rng);
                if wmsn_topology::connectivity::is_connected(&wmsn_util::geom::unit_disk_adjacency(
                    &pts,
                    field.range_m,
                )) {
                    break pts;
                }
            };
            let places = FeasiblePlaces::grid(field.field, 4, 4);
            let chosen = placement::place_gateways(
                placement::PlacementAlgorithm::KMeans { iterations: 10 },
                &sensors,
                field.field,
                field.range_m,
                &places,
                m,
                &mut rng,
            );
            let gws: Vec<Point> = chosen.iter().map(|&p| places.position(p)).collect();
            let topo = Topology::new(sensors, gws, field.field, field.range_m);
            let hf = HopField::compute(&topo);
            rows.push(ReportRow::new(
                "E1",
                format!("n={n} m={m}"),
                "mean_hops",
                hf.mean_sensor_hops(n).unwrap_or(f64::NAN),
            ));
            rows.push(ReportRow::new(
                "E1",
                format!("n={n} m={m}"),
                "max_hops",
                f64::from(hf.max_sensor_hops(n)),
            ));
        }
    }
    rows
}

// ---------------------------------------------------------------- E2 --

/// E2 (Table 1): replay the MLR incremental-routing-table walkthrough in
/// full simulation — a 21-sensor chain, 3 mobile gateways following the
/// scripted rounds {A,B,C} → {A,D,C} → {E,D,C} — and report, per round,
/// the selected place, its hop count, and the table size of node `S_i`.
pub fn e2_table1() -> Vec<ReportRow> {
    let (sensor_pos, place_pos) = table1_topology();
    let places = FeasiblePlaces::new(place_pos);
    let mut cfg = wmsn_sim::WorldConfig::ideal(0xE2);
    cfg.sensor_phy.range_m = PAPER_RANGE;
    let mut world = World::new(cfg);
    let sensors: Vec<NodeId> = sensor_pos
        .iter()
        .map(|&p| {
            world.add_node(
                NodeConfig::sensor(p, 100.0),
                MlrSensor::boxed(MlrConfig::default()),
            )
        })
        .collect();
    let gateways: Vec<NodeId> = TABLE1_ROUNDS[0]
        .iter()
        .map(|&p| {
            world.add_node(
                NodeConfig::gateway(places.position(p)),
                MlrGateway::boxed(p as u16),
            )
        })
        .collect();
    let _ = table1_field();
    let mut rows = Vec::new();
    let mut prev: Vec<usize> = Vec::new();
    for (round, occupied) in TABLE1_ROUNDS.iter().enumerate() {
        // Move + announce (round 0 announces everyone).
        for (g, &p) in occupied.iter().enumerate() {
            let moved = prev.get(g).map(|&q| q != p).unwrap_or(true);
            if moved {
                world.set_position(gateways[g], places.position(p));
                world.with_behavior::<MlrGateway, _>(gateways[g], |b, ctx| {
                    b.set_place(ctx, p as u16, round as u32);
                });
            }
        }
        prev = occupied.to_vec();
        world.run_for(500_000);
        // S_i sends one message; discovery fills any new place entries.
        world.with_behavior::<MlrSensor, _>(sensors[0], |b, ctx| b.originate(ctx));
        world.run_for(4_000_000);
        let s0 = world.behavior_as::<MlrSensor>(sensors[0]).unwrap();
        let occupied_u16: Vec<u16> = occupied.iter().map(|&p| p as u16).collect();
        let best = s0.table.best_among_places(&occupied_u16);
        let (selected, hops) = best.map(|r| (r.place, r.hops())).unwrap_or((u16::MAX, 0));
        let label = |r: usize| FeasiblePlaces::label(r);
        rows.push(ReportRow::new(
            "E2",
            format!(
                "round {} occupied {:?}",
                round + 1,
                occupied.iter().map(|&p| label(p)).collect::<Vec<_>>()
            ),
            "selected_place_id",
            f64::from(selected),
        ));
        rows.push(ReportRow::new(
            "E2",
            format!(
                "round {} paper_selects {}",
                round + 1,
                label(TABLE1_SELECTED[round])
            ),
            "selected_place_paper",
            TABLE1_SELECTED[round] as f64,
        ));
        rows.push(ReportRow::new(
            "E2",
            format!("round {}", round + 1),
            "selected_hops",
            f64::from(hops),
        ));
        rows.push(ReportRow::new(
            "E2",
            format!("round {}", round + 1),
            "paper_hops",
            f64::from(TABLE1_HOPS[TABLE1_SELECTED[round]]),
        ));
        rows.push(ReportRow::new(
            "E2",
            format!("round {}", round + 1),
            "table_entries",
            s0.table.len() as f64,
        ));
    }
    rows
}

// ---------------------------------------------------------------- E3 --

/// E3: network lifetime (first sensor death, in rounds) — single-sink
/// SPR vs 3-gateway SPR vs MLR with rotating gateways, against the exact
/// optimal upper bound.
pub fn e3_lifetime(ns: &[usize], seed: u64) -> Vec<ReportRow> {
    let mut rows = Vec::new();
    for &n in ns {
        // Battery covers the discovery flood(s) plus a data budget; the
        // data phase (5 messages per sensor per round) is what separates
        // the protocols. SPR re-floods every round by design (§5.2), so
        // its lifetime is throttled by control energy; MLR floods once
        // and then pays data only. Flood cost grows ~n² network-wide
        // (every node hears every origin's flood), so the budget scales.
        let battery = 1.0 + (n * n) as f64 * 6.25e-4;
        let traffic = TrafficParams {
            msgs_per_sensor_per_round: 5,
            ..TrafficParams::default()
        };
        let mk_field = || FieldParams {
            battery_j: battery,
            ..FieldParams::default_uniform(n, seed)
        };
        let max_rounds = 400;
        // Single sink.
        let single = build_spr(
            &mk_field(),
            &GatewayParams {
                m: 1,
                ..GatewayParams::default_three()
            },
            traffic,
        );
        let bound_single = optimal_lifetime_rounds(&single.topology(), battery, 1e-3, 1e-3, 5.0);
        let mut d = SprDriver::new(single);
        let lt = d.run_until_first_death(max_rounds);
        rows.push(ReportRow::new(
            "E3",
            format!("n={n} spr m=1"),
            "lifetime_rounds",
            lt.lifetime_rounds.map(f64::from).unwrap_or(f64::NAN),
        ));
        rows.push(ReportRow::new(
            "E3",
            format!("n={n} spr m=1"),
            "optimal_bound_rounds",
            bound_single,
        ));
        // Three static gateways.
        let spr3 = build_spr(&mk_field(), &GatewayParams::default_three(), traffic);
        let bound3 = optimal_lifetime_rounds(&spr3.topology(), battery, 1e-3, 1e-3, 5.0);
        let mut d = SprDriver::new(spr3);
        let lt = d.run_until_first_death(max_rounds);
        rows.push(ReportRow::new(
            "E3",
            format!("n={n} spr m=3"),
            "lifetime_rounds",
            lt.lifetime_rounds.map(f64::from).unwrap_or(f64::NAN),
        ));
        rows.push(ReportRow::new(
            "E3",
            format!("n={n} spr m=3"),
            "optimal_bound_rounds",
            bound3,
        ));
        // MLR with three static gateways: one discovery, then pure data.
        let mlr = build_mlr(&mk_field(), &GatewayParams::default_three(), traffic, 0.0);
        let mut d = MlrDriver::new(mlr);
        let lt = d.run_until_first_death(max_rounds);
        rows.push(ReportRow::new(
            "E3",
            format!("n={n} mlr m=3"),
            "lifetime_rounds",
            lt.lifetime_rounds.map(f64::from).unwrap_or(f64::NAN),
        ));
        rows.push(ReportRow::new(
            "E3",
            format!("n={n} mlr m=3"),
            "optimal_bound_rounds",
            bound3,
        ));
    }
    rows
}

// ---------------------------------------------------------------- E4 --

/// E4: the `K_max` effect — the optimal lifetime bound (and mean hops) as
/// the gateway count grows; gains saturate. Plus the placement-algorithm
/// ablation at `m = 3`.
pub fn e4_kmax(ms: &[usize], seed: u64) -> Vec<ReportRow> {
    let n = 120;
    let field = FieldParams::default_uniform(n, seed);
    let mut rng = SplitMix64::new(seed).split(0xE4);
    let sensors = field.deployment.generate(field.field, &mut rng);
    let places = FeasiblePlaces::grid(field.field, 4, 4);
    let mut rows = Vec::new();
    for &m in ms {
        let chosen = placement::place_gateways(
            placement::PlacementAlgorithm::KMeans { iterations: 10 },
            &sensors,
            field.field,
            field.range_m,
            &places,
            m,
            &mut rng,
        );
        let gws: Vec<Point> = chosen.iter().map(|&p| places.position(p)).collect();
        let topo = Topology::new(sensors.clone(), gws, field.field, field.range_m);
        let bound = optimal_lifetime_rounds(&topo, 1.0, 1e-3, 1e-3, 1.0);
        let hf = HopField::compute(&topo);
        rows.push(ReportRow::new(
            "E4",
            format!("n={n} m={m}"),
            "optimal_lifetime_rounds",
            bound,
        ));
        rows.push(ReportRow::new(
            "E4",
            format!("n={n} m={m}"),
            "mean_hops",
            hf.mean_sensor_hops(n).unwrap_or(f64::NAN),
        ));
    }
    // Placement ablation at m = 3.
    for (name, alg) in [
        ("random", placement::PlacementAlgorithm::Random),
        (
            "kmeans",
            placement::PlacementAlgorithm::KMeans { iterations: 10 },
        ),
        ("kcenter", placement::PlacementAlgorithm::GreedyKCenter),
        ("exhaustive", placement::PlacementAlgorithm::ExhaustiveHops),
    ] {
        let chosen = placement::place_gateways(
            alg,
            &sensors,
            field.field,
            field.range_m,
            &places,
            3,
            &mut rng,
        );
        let gws: Vec<Point> = chosen.iter().map(|&p| places.position(p)).collect();
        let score =
            placement::evaluate_mean_hops(&sensors, field.field, field.range_m, &gws, 100.0);
        rows.push(ReportRow::new(
            "E4",
            format!("placement={name} m=3"),
            "mean_hops",
            score,
        ));
    }
    rows
}

// ---------------------------------------------------------------- E5 --

/// E5: control-traffic overhead of MLR's incremental tables vs the
/// reset-every-round ablation, over `rounds` rounds with round-robin
/// gateway movement.
pub fn e5_overhead(rounds: u32, seed: u64) -> Vec<ReportRow> {
    // 2 gateways over |P| = 4 places: all places are visited within the
    // first two rounds, so the tail of the run is the steady state the
    // paper's savings claim is about (every place already has an entry).
    let build = || {
        build_mlr(
            &FieldParams {
                battery_j: 10.0,
                ..FieldParams::default_uniform(60, seed)
            },
            &GatewayParams::rotating(2, 2, 2),
            TrafficParams::default(),
            0.0,
        )
    };
    let coverage_rounds = 4u32; // |P| places all seen after this many
    let mut rows = Vec::new();
    for (name, reset) in [("incremental", false), ("reset_each_round", true)] {
        let mut driver = MlrDriver::new(build());
        if reset {
            driver = driver.with_table_reset();
        }
        let reports = driver.run_rounds(rounds);
        let total_control: u64 = reports.iter().map(|r| r.control_frames).sum();
        let steady_control: u64 = reports
            .iter()
            .skip(coverage_rounds as usize)
            .map(|r| r.control_frames)
            .sum();
        let delivered: u64 = reports.iter().map(|r| r.delivered).sum();
        let originated: u64 = reports.iter().map(|r| r.originated).sum();
        rows.push(ReportRow::new(
            "E5",
            format!("mlr {name} rounds={rounds}"),
            "control_frames_total",
            total_control as f64,
        ));
        rows.push(ReportRow::new(
            "E5",
            format!("mlr {name} rounds={rounds}"),
            "control_frames_steady_state",
            steady_control as f64,
        ));
        rows.push(ReportRow::new(
            "E5",
            format!("mlr {name} rounds={rounds}"),
            "delivery_ratio",
            delivered as f64 / originated.max(1) as f64,
        ));
    }
    rows
}

// ---------------------------------------------------------------- E6 --

/// The attack menu of E6.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Attack {
    /// No adversary (baseline).
    None,
    /// Blackhole relay on the source's path.
    Blackhole,
    /// Sinkhole forging attractive replies.
    Sinkhole,
    /// Replay of recorded data frames.
    Replay,
    /// Forged gateway-move announcements (normal radio).
    FalseAnnounce,
    /// Forged announcements at HELLO-flood power.
    HelloFlood,
    /// Out-of-band wormhole that swallows data.
    Wormhole,
    /// The same wormhole, against a SecMLR gateway running the
    /// deployment-knowledge topology guard (for MLR this cell behaves
    /// like plain [`Attack::Wormhole`] — the guard is a SecMLR feature).
    WormholeGuarded,
}

impl Attack {
    /// All attacks including the baseline.
    pub fn all() -> [Attack; 8] {
        [
            Attack::None,
            Attack::Blackhole,
            Attack::Sinkhole,
            Attack::Replay,
            Attack::FalseAnnounce,
            Attack::HelloFlood,
            Attack::Wormhole,
            Attack::WormholeGuarded,
        ]
    }

    /// Stable label used in report rows.
    pub fn label(self) -> &'static str {
        match self {
            Attack::None => "none",
            Attack::Blackhole => "blackhole",
            Attack::Sinkhole => "sinkhole",
            Attack::Replay => "replay",
            Attack::FalseAnnounce => "false_announce",
            Attack::HelloFlood => "hello_flood",
            Attack::Wormhole => "wormhole",
            Attack::WormholeGuarded => "wormhole_guarded",
        }
    }
}

/// Result of one attacked run.
#[derive(Clone, Copy, Debug)]
pub struct AttackOutcome {
    /// Unique-message delivery ratio.
    pub delivery_ratio: f64,
    /// Deliveries minus unique messages (replay-induced duplicates).
    pub duplicate_deliveries: u64,
}

/// Run one (protocol, attack) cell of the E6 matrix: a 10-sensor chain
/// with the gateway at the far end and the adversary parked beside the
/// source, `rounds` rounds of one message per sensor.
pub fn run_attack_cell(protocol: TargetProtocol, attack: Attack, seed: u64) -> AttackOutcome {
    run_attack_cell_traced(protocol, attack, seed, None).0
}

/// [`run_attack_cell`] with an optional trace sink installed before the
/// world starts. The sink only records — the simulation is identical to
/// the unsinked run — and is returned flushed so callers can downcast
/// it (E18 hands in a blind `HealthMonitor` this way).
pub fn run_attack_cell_traced(
    protocol: TargetProtocol,
    attack: Attack,
    seed: u64,
    sink: Option<Box<dyn wmsn_trace::TraceSink>>,
) -> (AttackOutcome, Option<Box<dyn wmsn_trace::TraceSink>>) {
    let n = 10usize;
    let mut cfg = wmsn_sim::WorldConfig::ideal(seed);
    cfg.sensor_phy.range_m = 10.0;
    let mut world = World::new(cfg);
    let gw_id = NodeId(n as u32);
    let master = wmsn_crypto::Key128([0x42; 16]);
    let mut sensors = Vec::new();
    for i in 0..n {
        let pos = Point::new(i as f64 * 10.0, 0.0);
        let honest: Box<dyn wmsn_sim::Behavior> = match protocol {
            TargetProtocol::Mlr => MlrSensor::boxed(MlrConfig::default()),
            TargetProtocol::SecMlr => {
                let keys = wmsn_crypto::KeyStore::for_sensor(&master, i as u32, &[gw_id.0]);
                SecMlrSensor::boxed(wmsn_secure::SecSensorConfig::default(), keys)
            }
        };
        // The blackhole replaces the honest relay at position 1 (on the
        // source's path).
        let behavior = if attack == Attack::Blackhole && i == 1 {
            SelectiveForwarder::boxed(honest, 1.0)
        } else {
            honest
        };
        sensors.push(world.add_node(NodeConfig::sensor(pos, 100.0), behavior));
    }
    let gw = match protocol {
        TargetProtocol::Mlr => world.add_node(
            NodeConfig::gateway(Point::new(n as f64 * 10.0, 0.0)),
            MlrGateway::boxed(0),
        ),
        TargetProtocol::SecMlr => world.add_node(
            NodeConfig::gateway(Point::new(n as f64 * 10.0, 0.0)),
            SecMlrGateway::boxed(wmsn_secure::SecGatewayConfig::default(), &master, gw_id, 0),
        ),
    };
    // Adversary node(s).
    match attack {
        Attack::Sinkhole => {
            let a = world.add_node(
                NodeConfig::sensor(Point::new(0.0, 8.0), 100.0),
                Sinkhole::boxed(protocol, gw, 0),
            );
            world.set_promiscuous(a, true);
        }
        Attack::Replay => {
            let a = world.add_node(
                NodeConfig::sensor(Point::new(15.0, 6.0), 100.0),
                Replayer::boxed(400_000, Some(PacketKind::Data), 200),
            );
            world.set_promiscuous(a, true);
        }
        Attack::FalseAnnounce | Attack::HelloFlood => {
            let boost = if attack == Attack::HelloFlood {
                Some(500.0)
            } else {
                None
            };
            let target = match protocol {
                TargetProtocol::Mlr => AnnounceTarget::Mlr,
                TargetProtocol::SecMlr => AnnounceTarget::SecMlr,
            };
            // Lure traffic to a place nobody occupies.
            world.add_node(
                NodeConfig::sensor(Point::new(0.0, 8.0), 100.0),
                FalseAnnouncer::boxed(target, gw, 7, 300_000, boost),
            );
        }
        Attack::Wormhole | Attack::WormholeGuarded => {
            let (a, b) = wormhole_pair(5_000, true);
            let ea = world.add_node(NodeConfig::sensor(Point::new(0.0, 7.0), 100.0), Box::new(a));
            let eb = world.add_node(
                NodeConfig::sensor(Point::new(n as f64 * 10.0, 7.0), 100.0),
                Box::new(b),
            );
            world.set_promiscuous(ea, true);
            world.set_promiscuous(eb, true);
        }
        Attack::None | Attack::Blackhole => {}
    }
    // Deployment wiring.
    if attack == Attack::WormholeGuarded && protocol == TargetProtocol::SecMlr {
        // The guard ships with the deployment layout (sensors + gateway).
        let layout: Vec<(NodeId, Point)> = (0..=n)
            .map(|i| (NodeId(i as u32), Point::new(i as f64 * 10.0, 0.0)))
            .collect();
        world.with_behavior::<SecMlrGateway, _>(gw, |g, _| {
            g.guard = Some(wmsn_secure::gateway::TopologyGuard::new(layout, 10.0));
        });
    }
    if let Some(sink) = sink {
        world.set_trace_sink(sink);
    }
    match protocol {
        TargetProtocol::Mlr => {
            world.start();
            world.with_behavior::<MlrGateway, _>(gw, |g, ctx| g.set_place(ctx, 0, 0));
            world.run_for(500_000);
        }
        TargetProtocol::SecMlr => {
            let params = world
                .behavior_as::<SecMlrGateway>(gw)
                .unwrap()
                .tesla_params();
            for &s in &sensors {
                world.with_behavior::<SecMlrSensor, _>(s, |b, _| {
                    b.install_tesla(
                        gw,
                        wmsn_crypto::tesla::TeslaReceiver::new(
                            params.0, params.1, params.2, params.3, params.4,
                        ),
                    );
                    b.set_initial_occupancy(&[(gw, 0)]);
                });
            }
            world.start();
            world.run_for(500_000);
        }
    }
    // Traffic: 3 rounds, only the three sensors nearest the adversary
    // report (their paths cross the attack surface).
    for _ in 0..3 {
        for &s in &sensors[..3] {
            match protocol {
                TargetProtocol::Mlr => {
                    world.with_behavior::<MlrSensor, _>(s, |b, ctx| b.originate(ctx));
                }
                TargetProtocol::SecMlr => {
                    world.with_behavior::<SecMlrSensor, _>(s, |b, ctx| b.originate(ctx));
                }
            }
        }
        world.run_for(3_000_000);
    }
    let sink = world.take_trace_sink();
    let m = world.metrics();
    let unique: std::collections::HashSet<(NodeId, u64)> =
        m.deliveries.iter().map(|d| (d.source, d.msg_id)).collect();
    let outcome = AttackOutcome {
        delivery_ratio: m.delivery_ratio(),
        duplicate_deliveries: m.deliveries.len() as u64 - unique.len() as u64,
    };
    (outcome, sink)
}

/// E6: the full attack-resistance matrix.
pub fn e6_attacks(seed: u64) -> Vec<ReportRow> {
    let mut rows = Vec::new();
    for protocol in [TargetProtocol::Mlr, TargetProtocol::SecMlr] {
        let pname = match protocol {
            TargetProtocol::Mlr => "mlr",
            TargetProtocol::SecMlr => "secmlr",
        };
        for attack in Attack::all() {
            let out = run_attack_cell(protocol, attack, seed);
            rows.push(ReportRow::new(
                "E6",
                format!("{pname} vs {}", attack.label()),
                "delivery_ratio",
                out.delivery_ratio,
            ));
            if attack == Attack::Replay {
                rows.push(ReportRow::new(
                    "E6",
                    format!("{pname} vs {}", attack.label()),
                    "duplicate_deliveries",
                    out.duplicate_deliveries as f64,
                ));
            }
        }
    }
    rows
}

// ---------------------------------------------------------------- E7 --

/// E7: the price of security — MLR vs SecMLR on the same field: frames,
/// bytes, latency, sensor energy, delivery.
pub fn e7_secmlr_cost(seed: u64) -> Vec<ReportRow> {
    let field = FieldParams {
        battery_j: 10.0,
        ..FieldParams::default_uniform(50, seed)
    };
    let gw = GatewayParams::rotating(3, 3, 3);
    let traffic = TrafficParams::default();
    let mut rows = Vec::new();

    let mut mlr = MlrDriver::new(build_mlr(&field, &gw, traffic, 0.0));
    mlr.run_rounds(3);
    let sensors = mlr.scenario.sensors.clone();
    let m = mlr.scenario.world.metrics();
    for (metric, value) in [
        ("total_frames", m.total_sent() as f64),
        ("total_bytes", m.total_bytes() as f64),
        ("control_bytes", m.sent_bytes_control as f64),
        ("security_bytes", m.sent_bytes_security as f64),
        ("mean_latency_us", m.mean_latency_us()),
        ("delivery_ratio", m.delivery_ratio()),
        ("sensor_energy_j", m.total_energy(&sensors)),
    ] {
        rows.push(ReportRow::new("E7", "mlr", metric, value));
    }

    let mut sec = SecMlrDriver::new(build_secmlr(&field, &gw, traffic));
    sec.run_rounds(3);
    let sensors = sec.scenario.sensors.clone();
    let m = sec.scenario.world.metrics();
    for (metric, value) in [
        ("total_frames", m.total_sent() as f64),
        ("total_bytes", m.total_bytes() as f64),
        ("control_bytes", m.sent_bytes_control as f64),
        ("security_bytes", m.sent_bytes_security as f64),
        ("mean_latency_us", m.mean_latency_us()),
        ("delivery_ratio", m.delivery_ratio()),
        ("sensor_energy_j", m.total_energy(&sensors)),
    ] {
        rows.push(ReportRow::new("E7", "secmlr", metric, value));
    }
    rows
}

// ---------------------------------------------------------------- E8 --

/// E8: robustness — LEACH losing its heads vs WMSN losing a gateway.
/// Reports the delivery ratio in the failure round and in the recovery
/// round that follows.
pub fn e8_robustness(seed: u64) -> Vec<ReportRow> {
    let mut rows = Vec::new();
    // LEACH: healthy round, then a round whose heads die post-join.
    let field = FieldParams {
        battery_j: 10.0,
        ..FieldParams::default_uniform(60, seed)
    };
    let mut leach = LeachDriver::new(build_leach(
        &field,
        Point::new(50.0, 140.0),
        0.12,
        TrafficParams::default(),
    ));
    let healthy = leach.run_round(false);
    let faulty = leach.run_round(true);
    // LEACH has no recovery mechanism within the failed round; the next
    // election round recovers (heads are re-elected among survivors).
    let recovered = leach.run_round(false);
    rows.push(ReportRow::new(
        "E8",
        "leach healthy",
        "delivery_ratio",
        healthy.delivery_ratio(),
    ));
    rows.push(ReportRow::new(
        "E8",
        "leach heads_killed",
        "delivery_ratio",
        faulty.delivery_ratio(),
    ));
    rows.push(ReportRow::new(
        "E8",
        "leach next_round",
        "delivery_ratio",
        recovered.delivery_ratio(),
    ));

    // MLR: three gateways; kill one and let the watchdog redirect.
    let mut mlr = MlrDriver::new(build_mlr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
        0.0,
    ));
    let healthy = mlr.run_round();
    let victim = mlr.scenario.gateways[0];
    mlr.scenario.world.kill(victim);
    let failure = mlr.run_round();
    // Watchdog: sensors that lost traffic drop the dead gateway.
    let sensors = mlr.scenario.sensors.clone();
    for &s in &sensors {
        mlr.scenario
            .world
            .with_behavior::<MlrSensor, _>(s, |b, _| b.remove_gateway(victim));
    }
    let recovered = mlr.run_round();
    rows.push(ReportRow::new(
        "E8",
        "mlr healthy",
        "delivery_ratio",
        healthy.delivery_ratio(),
    ));
    rows.push(ReportRow::new(
        "E8",
        "mlr gateway_killed",
        "delivery_ratio",
        failure.delivery_ratio(),
    ));
    rows.push(ReportRow::new(
        "E8",
        "mlr after_redirect",
        "delivery_ratio",
        recovered.delivery_ratio(),
    ));
    rows
}

// ---------------------------------------------------------------- E9 --

/// E9: scalability at constant density — mean/max hops and (for sim
/// sizes) latency and delivery, single sink vs gateways scaled with
/// area.
pub fn e9_scalability(ns: &[usize], seed: u64, simulate: bool) -> Vec<ReportRow> {
    let mut rows = Vec::new();
    for &n in ns {
        let density = 0.02; // 1 sensor per 50 m²
        for scaled in [false, true] {
            let m = if scaled { (n / 50).max(2) } else { 1 };
            let field = FieldParams {
                battery_j: 10.0,
                ..FieldParams::constant_density(n, density, seed)
            };
            let grid = ((m as f64).sqrt().ceil() as usize).max(2);
            let gw = GatewayParams {
                m,
                place_grid: (grid, grid),
                ..GatewayParams::default_three()
            };
            let scen = build_spr(&field, &gw, TrafficParams::default());
            let topo = scen.topology();
            let hf = HopField::compute(&topo);
            let cfg_label = format!("n={n} m={m}");
            rows.push(ReportRow::new(
                "E9",
                &cfg_label,
                "mean_hops",
                hf.mean_sensor_hops(n).unwrap_or(f64::NAN),
            ));
            rows.push(ReportRow::new(
                "E9",
                &cfg_label,
                "max_hops",
                f64::from(hf.max_sensor_hops(n)),
            ));
            if simulate {
                let mut d = SprDriver::new(scen);
                let r = d.run_round();
                rows.push(ReportRow::new(
                    "E9",
                    &cfg_label,
                    "delivery_ratio",
                    r.delivery_ratio(),
                ));
                rows.push(ReportRow::new(
                    "E9",
                    &cfg_label,
                    "mean_latency_us",
                    d.scenario.world.metrics().mean_latency_us(),
                ));
            }
        }
    }
    rows
}

/// Event-loop statistics for the simulated E9 kernel at size `n`:
/// `(events processed, peak event-queue depth)` summed/maxed over the
/// same two gateway configurations [`e9_scalability`] times. Feeds the
/// `events_per_sec` and `peak_queue_depth` columns in
/// `BENCH_hotpath.json`.
pub fn e9_event_stats(n: usize, seed: u64) -> (u64, usize) {
    let density = 0.02;
    let mut events = 0u64;
    let mut peak = 0usize;
    for scaled in [false, true] {
        let m = if scaled { (n / 50).max(2) } else { 1 };
        let field = FieldParams {
            battery_j: 10.0,
            ..FieldParams::constant_density(n, density, seed)
        };
        let grid = ((m as f64).sqrt().ceil() as usize).max(2);
        let gw = GatewayParams {
            m,
            place_grid: (grid, grid),
            ..GatewayParams::default_three()
        };
        let mut d = SprDriver::new(build_spr(&field, &gw, TrafficParams::default()));
        d.run_round();
        events += d.scenario.world.events_processed();
        peak = peak.max(d.scenario.world.peak_queue_depth());
    }
    (events, peak)
}

// ------------------------------------------------------- E9 (large) --

/// Execution summary of one large-scale SPR round (see [`e9_large`]).
///
/// The routing outcomes (`originated`, `unique_deliveries`,
/// `delivery_ratio`, `mean_latency_us`) are bit-identical between the
/// reference kernel and any sharded run; `events` and
/// `peak_queue_depth` are per-kernel execution statistics and differ by
/// construction (the sharded kernel re-schedules boundary arrivals).
#[derive(Clone, Copy, Debug)]
pub struct E9LargeSummary {
    /// Sensor count.
    pub n: usize,
    /// Application messages originated.
    pub originated: u64,
    /// Unique (source, msg_id) messages delivered.
    pub unique_deliveries: u64,
    /// `unique_deliveries / originated`.
    pub delivery_ratio: f64,
    /// Mean end-to-end latency (µs).
    pub mean_latency_us: f64,
    /// Events popped by the kernel (execution statistic).
    pub events: u64,
    /// Event-queue high-water mark (execution statistic).
    pub peak_queue_depth: usize,
}

/// Build the large-scale E9 world: `n` sensors at the standard E9
/// density (0.02 / m²), one gateway per 500 sensors on a random
/// feasible-place grid, and a base station at the field centre that
/// every gateway uplinks delivered data to (the full three-tier path).
///
/// Batteries are infinite: the sharded kernel's equivalence envelope
/// requires death-free rounds, and this workload measures kernel
/// throughput, not network lifetime.
pub fn e9_large_scenario(n: usize, seed: u64) -> (SprScenario, NodeId) {
    let field = FieldParams {
        battery_j: f64::INFINITY,
        ..FieldParams::constant_density(n, 0.02, seed)
    };
    let m = (n / 500).max(2);
    let grid = ((m as f64).sqrt().ceil() as usize).max(2);
    let gw = GatewayParams {
        m,
        place_grid: (grid, grid),
        placement: placement::PlacementAlgorithm::Random,
        movement: wmsn_topology::MovementPolicy::Static,
    };
    build_spr_three_tier(&field, &gw, TrafficParams::default())
}

/// Run one timer-staggered SPR round on any host kernel (the reference
/// [`World`] or the sharded parallel kernel).
///
/// Every gateway is uplinked to `base`, then `sources` sensors (an even
/// stride across the id space) arm origination timers spread over the
/// first half of the round, and a single `run_until` carries the world
/// to the round end. The event loop — not a driver loop — paces the
/// world, which is what lets the sharded kernel overlap shards instead
/// of serialising behind per-message `run_for` calls.
pub fn e9_large_round<H: SimHost>(
    scen: &mut SprScenario<H>,
    base: NodeId,
    sources: usize,
) -> E9LargeSummary {
    let n = scen.sensors.len();
    let sources = sources.clamp(1, n.max(1));
    scen.world.start();
    let gateways = scen.gateways.clone();
    for g in gateways {
        scen.world
            .with_behavior::<SprGateway, _>(g, |b, _| b.set_uplink(base));
    }
    let window = scen.traffic.round_duration_us / 2;
    let stride = (n / sources).max(1);
    let gap = (window / sources as u64).max(1);
    let armed: Vec<NodeId> = (0..sources.min(n))
        .map(|k| scen.sensors[k * stride])
        .collect();
    for (k, s) in armed.into_iter().enumerate() {
        let delay = 1 + k as u64 * gap;
        scen.world
            .with_behavior::<SprSensor, _>(s, |b, ctx| b.schedule_originate(ctx, delay));
    }
    scen.world.run_until(scen.traffic.round_duration_us);
    let events = scen.world.events_processed();
    let peak = scen.world.peak_queue_depth();
    let m = scen.world.metrics();
    E9LargeSummary {
        n,
        originated: m.originated,
        unique_deliveries: m.unique_deliveries(),
        delivery_ratio: m.delivery_ratio(),
        mean_latency_us: m.mean_latency_us(),
        events,
        peak_queue_depth: peak,
    }
}

/// The large-scale E9 entry point: one SPR round at `n`, on the
/// single-threaded reference kernel (`parallel = None`) or on the
/// sharded parallel kernel (`parallel = Some(_)`, strip shards cut
/// along the sensor-range grid seam).
///
/// `fast_path = false` additionally disables the unicast fast-path
/// delivery optimisation — the pre-optimisation medium path the perf
/// harness times the baseline against.
pub fn e9_large(
    n: usize,
    seed: u64,
    sources: usize,
    fast_path: bool,
    parallel: Option<ParallelConfig>,
) -> E9LargeSummary {
    let (mut scen, base) = e9_large_scenario(n, seed);
    scen.world.set_unicast_fast_path(fast_path);
    match parallel {
        None => e9_large_round(&mut scen, base, sources),
        Some(p) => {
            let mut positions = scen.sensor_positions.clone();
            positions.extend_from_slice(&scen.gateway_positions);
            positions.push(scen.world.node(base).pos);
            let assignment = strip_shards(&positions, scen.range_m, p.shards);
            let mut scen = scen.map_world(|w| ShardedWorld::from_world(w, assignment, p.threads));
            e9_large_round(&mut scen, base, sources)
        }
    }
}

// --------------------------------------------------------------- E10 --

/// E10: load balance under a hot spot. Sensors near gateway 0 produce 5×
/// the traffic (a "forest fire" near that gateway); compare gateway load
/// imbalance and delivery with α = 0 vs α > 0.
pub fn e10_load_balance(seed: u64) -> Vec<ReportRow> {
    let mut rows = Vec::new();
    for alpha in [0.0, 4.0] {
        let field = FieldParams::default_uniform(60, seed);
        let scen = build_mlr(
            &field,
            &GatewayParams {
                m: 2,
                place_grid: (2, 1),
                placement: placement::PlacementAlgorithm::ExhaustiveHops,
                movement: wmsn_topology::MovementPolicy::Static,
            },
            TrafficParams::default(),
            alpha,
        );
        let gw0_pos = scen.places.position(scen.schedule.current()[0]);
        let mut driver = MlrDriver::new(scen);
        // Round 0: discovery + baseline traffic.
        driver.run_round();
        // Gateways advertise their loads.
        let gateways = driver.scenario.gateways.clone();
        for &g in &gateways {
            driver
                .scenario
                .world
                .with_behavior::<MlrGateway, _>(g, |b, ctx| b.announce_load(ctx));
        }
        driver.scenario.world.run_for(500_000);
        // Hot spot: sensors within 30 m of gateway 0 fire 5 extra readings.
        let hot: Vec<NodeId> = driver
            .scenario
            .sensors
            .iter()
            .copied()
            .filter(|&s| driver.scenario.world.node(s).pos.dist(gw0_pos) < 30.0)
            .collect();
        for _ in 0..5 {
            for &s in &hot {
                driver
                    .scenario
                    .world
                    .with_behavior::<MlrSensor, _>(s, |b, ctx| b.originate(ctx));
            }
            driver.scenario.world.run_for(1_000_000);
        }
        driver.scenario.world.run_for(1_000_000);
        let loads: Vec<u64> = gateways
            .iter()
            .map(|&g| {
                driver
                    .scenario
                    .world
                    .behavior_as::<MlrGateway>(g)
                    .unwrap()
                    .absorbed
            })
            .collect();
        let total: u64 = loads.iter().sum();
        let imbalance = if total == 0 {
            0.0
        } else {
            (loads[0] as f64 - loads[1] as f64).abs() / total as f64
        };
        let cfg_label = format!("alpha={alpha}");
        rows.push(ReportRow::new(
            "E10",
            &cfg_label,
            "gw0_absorbed",
            loads[0] as f64,
        ));
        rows.push(ReportRow::new(
            "E10",
            &cfg_label,
            "gw1_absorbed",
            loads[1] as f64,
        ));
        rows.push(ReportRow::new(
            "E10",
            &cfg_label,
            "load_imbalance",
            imbalance,
        ));
        rows.push(ReportRow::new(
            "E10",
            &cfg_label,
            "delivery_ratio",
            driver.scenario.world.metrics().delivery_ratio(),
        ));
    }
    rows
}

// --------------------------------------------------------------- E12 --

/// Build the E12 three-tier scenario (Fig. 1: 60 sensors on a 200×200 m
/// field, three WMGs, a 2×2 WMR mesh, the base station off-field) and
/// let the mesh backbone converge. An optional trace sink is installed
/// *before* convergence so a monitor sees the whole run, hellos
/// included. Returns the driver, the base-station id, and the WMG ids.
fn e12_scenario(
    seed: u64,
    sink: Option<Box<dyn wmsn_trace::TraceSink>>,
) -> (MlrDriver, NodeId, Vec<NodeId>) {
    let field = FieldParams {
        field: Rect::field(200.0, 200.0),
        range_m: 45.0,
        deployment: Deployment::Uniform { n: 60 },
        battery_j: 10.0,
        ..FieldParams::default_uniform(60, seed)
    };
    let scen = build_three_tier(
        &field,
        &GatewayParams {
            m: 3,
            place_grid: (3, 3),
            ..GatewayParams::default_three()
        },
        TrafficParams::default(),
        (2, 2),
        Point::new(100.0, 260.0),
        150.0,
    );
    let base = scen.base;
    let wmgs = scen.wmgs.clone();
    let initial = scen.initial_places.clone();
    let places = FeasiblePlaces::grid(field.field, 3, 3);
    let mut driver = MlrDriver::new(crate::builder::MlrScenario {
        world: scen.world,
        sensors: scen.sensors,
        gateways: scen.wmgs,
        places: places.clone(),
        // The builder already sat the WMGs at these places; a static
        // schedule seeded with the same ids keeps round 0 move-free (a
        // spurious move would invalidate the converged mesh neighbour
        // sets — hellos run once at start-up).
        schedule: wmsn_topology::MovementSchedule::new(
            wmsn_topology::MovementPolicy::Static,
            &places,
            initial,
            seed,
        ),
        traffic: TrafficParams::default(),
        sensor_positions: Vec::new(),
        range_m: field.range_m,
    });
    if let Some(sink) = sink {
        driver.scenario.world.set_trace_sink(sink);
    }
    // Let the mesh backbone converge before any sensor traffic.
    driver.scenario.world.run_until(2_000_000);
    (driver, base, wmgs)
}

/// E12: the three-layer architecture end-to-end — sensor readings
/// reaching a base station across the mesh backbone (Fig. 1).
pub fn e12_three_tier(seed: u64) -> Vec<ReportRow> {
    let (mut driver, base, wmgs) = e12_scenario(seed, None);
    let r0 = driver.run_round();
    let r1 = driver.run_round();
    let world = &driver.scenario.world;
    let base_delivered = world
        .behavior_as::<MeshNode>(base)
        .map(|b| b.delivered.len())
        .unwrap_or(0);
    let wmg_absorbed: u64 = wmgs
        .iter()
        .map(|&g| {
            world
                .behavior_as::<crate::wmg::WmgBehavior>(g)
                .map(|b| b.gateway.absorbed)
                .unwrap_or(0)
        })
        .sum();
    let uplinked: u64 = wmgs
        .iter()
        .map(|&g| {
            world
                .behavior_as::<crate::wmg::WmgBehavior>(g)
                .map(|b| b.uplinked)
                .unwrap_or(0)
        })
        .sum();
    vec![
        ReportRow::new(
            "E12",
            "three-tier",
            "round0_delivery_ratio",
            r0.delivery_ratio(),
        ),
        ReportRow::new(
            "E12",
            "three-tier",
            "round1_delivery_ratio",
            r1.delivery_ratio(),
        ),
        ReportRow::new("E12", "three-tier", "wmg_absorbed", wmg_absorbed as f64),
        ReportRow::new("E12", "three-tier", "uplinked", uplinked as f64),
        ReportRow::new(
            "E12",
            "three-tier",
            "base_station_received",
            base_delivered as f64,
        ),
    ]
}

/// E12 backbone-fault coverage: the two backbone-tier detectors
/// (`backbone_asymmetry`, `base_silence`) watching the three-tier
/// architecture blind. The healthy run must stay clean of both; killing
/// the base station mid-run must raise `base_silence` on it — the WMGs
/// keep uplinking mesh-tier data nobody delivers any more. Detection
/// only: ROADMAP keeps the WMG↔WMG steering lever open.
pub fn e12_backbone_fault(seed: u64) -> Vec<ReportRow> {
    use wmsn_health::{AlertKind, HealthConfig, HealthMonitor};
    fn backbone_counts(sink: &mut dyn wmsn_trace::TraceSink) -> (usize, usize, Vec<u64>) {
        let m = sink
            .as_any_mut()
            .downcast_mut::<HealthMonitor>()
            .expect("the installed sink is the monitor");
        // take_trace_sink's flush already finalized the monitor.
        let asym = m
            .alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::BackboneAsymmetry)
            .count();
        let silent: Vec<u64> = m
            .alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::BaseSilence)
            .map(|a| a.subject)
            .collect();
        (asym, silent.len(), silent)
    }
    let monitor = || Some(HealthMonitor::boxed(HealthConfig::default()));

    let (mut healthy, _, _) = e12_scenario(seed, monitor());
    healthy.run_round();
    healthy.run_round();
    let mut sink = healthy
        .scenario
        .world
        .take_trace_sink()
        .expect("monitor installed");
    let (h_asym, h_sil, _) = backbone_counts(sink.as_mut());

    let (mut faulty, base, _) = e12_scenario(seed, monitor());
    faulty.run_round();
    faulty.scenario.world.kill(base);
    faulty.run_round();
    faulty.run_round();
    let mut sink = faulty
        .scenario
        .world
        .take_trace_sink()
        .expect("monitor installed");
    let (f_asym, f_sil, subjects) = backbone_counts(sink.as_mut());
    let accused_base = subjects.contains(&u64::from(base.0));

    vec![
        ReportRow::new(
            "E12",
            "backbone healthy",
            "backbone_asymmetry",
            h_asym as f64,
        ),
        ReportRow::new("E12", "backbone healthy", "base_silence", h_sil as f64),
        ReportRow::new("E12", "base killed", "backbone_asymmetry", f_asym as f64),
        ReportRow::new("E12", "base killed", "base_silence", f_sil as f64),
        ReportRow::new(
            "E12",
            "base killed",
            "accused_base_station",
            f64::from(u8::from(accused_base)),
        ),
    ]
}

// --------------------------------------------------------------- E13 --

/// E13 (§4.4 topology control): GAF-style sleep scheduling on a dense
/// field — awake fraction, energy per delivered reading, and delivery,
/// with and without the schedule. Sleeping nodes' sensing is covered by
/// their cell leader (GAF's fidelity argument), so leaders report on
/// their behalf.
pub fn e13_sleep_scheduling(seed: u64) -> Vec<ReportRow> {
    use wmsn_topology::control::{awake_fraction, gaf_sleep_schedule};
    let mut rows = Vec::new();
    for use_gaf in [false, true] {
        let field = FieldParams {
            n_sensors: 150,
            deployment: Deployment::Uniform { n: 150 },
            battery_j: 10.0,
            ..FieldParams::default_uniform(150, seed)
        };
        let scen = build_mlr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
            0.0,
        );
        let positions = scen.sensor_positions.clone();
        let sensors = scen.sensors.clone();
        let mut driver = MlrDriver::new(scen);
        let awake = if use_gaf {
            gaf_sleep_schedule(&positions, &vec![1.0; positions.len()], field.range_m)
        } else {
            vec![true; positions.len()]
        };
        for (i, &up) in awake.iter().enumerate() {
            if !up {
                driver.scenario.world.sleep(sensors[i]);
            }
        }
        // Two rounds of traffic from the awake set.
        driver.run_rounds(2);
        let m = driver.scenario.world.metrics();
        let cfg_label = if use_gaf { "gaf" } else { "all_awake" };
        rows.push(ReportRow::new(
            "E13",
            cfg_label,
            "awake_fraction",
            awake_fraction(&awake),
        ));
        rows.push(ReportRow::new(
            "E13",
            cfg_label,
            "delivery_ratio",
            m.delivery_ratio(),
        ));
        rows.push(ReportRow::new(
            "E13",
            cfg_label,
            "sensor_energy_j",
            m.total_energy(&sensors),
        ));
        rows.push(ReportRow::new(
            "E13",
            cfg_label,
            "energy_per_delivery_mj",
            1e3 * m.total_energy(&sensors) / (m.unique_deliveries().max(1) as f64),
        ));
    }
    rows
}

// --------------------------------------------------------------- E14 --

/// E14 (medium-imperfection ablation): delivery under independent packet
/// loss for MLR and SecMLR, plus the receiver-overlap collision model
/// on/off for MLR.
pub fn e14_loss_and_collisions(seed: u64) -> Vec<ReportRow> {
    let mut rows = Vec::new();
    for loss in [0.0, 0.02, 0.05, 0.10] {
        let field = FieldParams {
            loss_prob: loss,
            battery_j: 10.0,
            ..FieldParams::default_uniform(40, seed)
        };
        let mut mlr = MlrDriver::new(build_mlr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
            0.0,
        ));
        let reports = mlr.run_rounds(2);
        let delivered: u64 = reports.iter().map(|r| r.delivered).sum();
        let originated: u64 = reports.iter().map(|r| r.originated).sum();
        rows.push(ReportRow::new(
            "E14",
            format!("mlr loss={loss}"),
            "delivery_ratio",
            delivered as f64 / originated.max(1) as f64,
        ));
        let mut sec = SecMlrDriver::new(build_secmlr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
        ));
        let reports = sec.run_rounds(2);
        let delivered: u64 = reports.iter().map(|r| r.delivered).sum();
        let originated: u64 = reports.iter().map(|r| r.originated).sum();
        rows.push(ReportRow::new(
            "E14",
            format!("secmlr loss={loss}"),
            "delivery_ratio",
            delivered as f64 / originated.max(1) as f64,
        ));
    }
    for (collisions, csma) in [(false, false), (true, false), (true, true)] {
        let field = FieldParams {
            collisions,
            csma,
            battery_j: 10.0,
            ..FieldParams::default_uniform(40, seed)
        };
        let mut mlr = MlrDriver::new(build_mlr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
            0.0,
        ));
        let reports = mlr.run_rounds(2);
        let delivered: u64 = reports.iter().map(|r| r.delivered).sum();
        let originated: u64 = reports.iter().map(|r| r.originated).sum();
        let cfg_label = format!("mlr collisions={collisions} csma={csma}");
        rows.push(ReportRow::new(
            "E14",
            &cfg_label,
            "delivery_ratio",
            delivered as f64 / originated.max(1) as f64,
        ));
        rows.push(ReportRow::new(
            "E14",
            &cfg_label,
            "collided_frames",
            mlr.scenario.world.metrics().collided as f64,
        ));
    }
    rows
}

// --------------------------------------------------------------- E15 --

/// E15 (§2.2 survey, quantified): one reporting round of every baseline
/// on the same 40-sensor field with a single sink — delivery, frames,
/// bytes, and sensor energy. The column the paper's related-work
/// arguments (implosion, negotiation, gradient, clustering, chains)
/// gesture at, measured.
pub fn e15_baselines(seed: u64) -> Vec<ReportRow> {
    use wmsn_routing::flooding::{FloodMode, FloodSensor, FloodSink};
    use wmsn_routing::leach::{LeachConfig, LeachSensor, LeachSink};
    use wmsn_routing::mcfa::{McfaSensor, McfaSink};
    use wmsn_routing::pegasis::{build_chain, PegasisConfig, PegasisSensor, PegasisSink};
    use wmsn_routing::spin::{SpinConfig, SpinSensor, SpinSink};
    use wmsn_routing::spr::{SprConfig, SprGateway, SprSensor};

    let n = 40usize;
    let field = FieldParams {
        battery_j: 10.0,
        ..FieldParams::default_uniform(n, seed)
    };
    // A shared connected deployment and a sink at the field edge.
    let mut rng = SplitMix64::new(seed).split(0xE15);
    let positions: Vec<Point> = loop {
        let pts = field.deployment.generate(field.field, &mut rng);
        if wmsn_topology::connectivity::is_connected(&wmsn_util::geom::unit_disk_adjacency(
            &pts,
            field.range_m,
        )) {
            break pts;
        }
    };
    let sink_pos = Point::new(50.0, 110.0);
    let sink_id = NodeId(n as u32);

    let mut rows = Vec::new();
    let mut record = |name: &str, world: &World, sensors: &[NodeId]| {
        let m = world.metrics();
        rows.push(ReportRow::new(
            "E15",
            name,
            "delivery_ratio",
            m.delivery_ratio(),
        ));
        rows.push(ReportRow::new(
            "E15",
            name,
            "data_frames",
            m.sent_data as f64,
        ));
        rows.push(ReportRow::new(
            "E15",
            name,
            "control_frames",
            m.sent_control as f64,
        ));
        rows.push(ReportRow::new(
            "E15",
            name,
            "total_bytes",
            m.total_bytes() as f64,
        ));
        rows.push(ReportRow::new(
            "E15",
            name,
            "sensor_energy_j",
            m.total_energy(sensors),
        ));
    };

    let base_world = || {
        let mut w = World::new(field.world_config());
        let sensors: Vec<NodeId> = Vec::new();
        let _ = &sensors;
        w.metrics_mut(); // touch
        w
    };
    let _ = base_world;

    // Flooding.
    {
        let mut w = World::new(field.world_config());
        let sensors: Vec<NodeId> = positions
            .iter()
            .map(|&p| {
                w.add_node(
                    NodeConfig::sensor(p, field.battery_j),
                    FloodSensor::boxed(FloodMode::Flood, 32),
                )
            })
            .collect();
        w.add_node(NodeConfig::gateway(sink_pos), FloodSink::boxed());
        w.start();
        for &s in &sensors {
            w.with_behavior::<FloodSensor, _>(s, |b, ctx| b.originate(ctx));
        }
        w.run_for(20_000_000);
        record("flooding", &w, &sensors);
    }
    // Gossiping.
    {
        let mut w = World::new(field.world_config());
        let sensors: Vec<NodeId> = positions
            .iter()
            .map(|&p| {
                w.add_node(
                    NodeConfig::sensor(p, field.battery_j),
                    FloodSensor::boxed(FloodMode::Gossip, 64),
                )
            })
            .collect();
        w.add_node(NodeConfig::gateway(sink_pos), FloodSink::boxed());
        w.start();
        for &s in &sensors {
            w.with_behavior::<FloodSensor, _>(s, |b, ctx| b.originate(ctx));
        }
        w.run_for(20_000_000);
        record("gossiping", &w, &sensors);
    }
    // SPIN.
    {
        let mut w = World::new(field.world_config());
        let sensors: Vec<NodeId> = positions
            .iter()
            .map(|&p| {
                w.add_node(
                    NodeConfig::sensor(p, field.battery_j),
                    SpinSensor::boxed(SpinConfig::default()),
                )
            })
            .collect();
        w.add_node(NodeConfig::gateway(sink_pos), SpinSink::boxed());
        w.start();
        for &s in &sensors {
            w.with_behavior::<SpinSensor, _>(s, |b, ctx| b.originate(ctx));
        }
        w.run_for(20_000_000);
        record("spin", &w, &sensors);
    }
    // MCFA.
    {
        let mut w = World::new(field.world_config());
        let sensors: Vec<NodeId> = positions
            .iter()
            .map(|&p| w.add_node(NodeConfig::sensor(p, field.battery_j), McfaSensor::boxed()))
            .collect();
        w.add_node(NodeConfig::gateway(sink_pos), McfaSink::boxed());
        w.run_until(2_000_000); // cost field converges
        for &s in &sensors {
            w.with_behavior::<McfaSensor, _>(s, |b, ctx| b.originate(ctx));
        }
        w.run_for(20_000_000);
        record("mcfa", &w, &sensors);
    }
    // LEACH (one round).
    {
        let cfg = LeachConfig {
            p: 0.12,
            payload_len: 24,
            sink_pos,
            sink: sink_id,
            max_boost_range: 400.0,
        };
        let mut w = World::new(field.world_config());
        let sensors: Vec<NodeId> = positions
            .iter()
            .map(|&p| {
                w.add_node(
                    NodeConfig::sensor(p, field.battery_j),
                    LeachSensor::boxed(cfg),
                )
            })
            .collect();
        w.add_node(NodeConfig::gateway(sink_pos), LeachSink::boxed());
        w.start();
        for &s in &sensors {
            w.with_behavior::<LeachSensor, _>(s, |b, ctx| {
                b.start_round(ctx, 0);
            });
        }
        w.run_for(200_000);
        for &s in &sensors {
            w.with_behavior::<LeachSensor, _>(s, |b, ctx| b.report(ctx));
        }
        w.run_for(200_000);
        for &s in &sensors {
            w.with_behavior::<LeachSensor, _>(s, |b, ctx| b.flush(ctx));
        }
        w.run_for(500_000);
        record("leach", &w, &sensors);
    }
    // PEGASIS (one round).
    {
        let chain_order = build_chain(&positions, sink_pos);
        let chain_ids: Vec<NodeId> = chain_order.iter().map(|&i| NodeId(i as u32)).collect();
        let chain_positions: Vec<Point> = chain_order.iter().map(|&i| positions[i]).collect();
        let mut w = World::new(field.world_config());
        let sensors: Vec<NodeId> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let chain_index = chain_order.iter().position(|&c| c == i).unwrap();
                w.add_node(
                    NodeConfig::sensor(p, field.battery_j),
                    PegasisSensor::boxed(PegasisConfig {
                        chain_index,
                        chain: chain_ids.clone(),
                        chain_positions: chain_positions.clone(),
                        sink: sink_id,
                        sink_pos,
                        max_boost_range: 400.0,
                    }),
                )
            })
            .collect();
        w.add_node(
            NodeConfig::gateway(sink_pos),
            PegasisSink::boxed(chain_ids.clone()),
        );
        w.start();
        for &s in &sensors {
            w.with_behavior::<PegasisSensor, _>(s, |b, _| b.start_round(0));
        }
        let li = PegasisSensor::leader_index(0, chain_order.len());
        let mut order: Vec<usize> = (0..li).collect();
        order.extend((li + 1..chain_order.len()).rev());
        order.push(li);
        for k in order {
            let node = NodeId(chain_order[k] as u32);
            w.with_behavior::<PegasisSensor, _>(node, |b, ctx| b.gather(ctx, 0));
            w.run_for(50_000);
        }
        w.run_for(500_000);
        record("pegasis", &w, &sensors);
    }
    // SPR with the single sink (the paper's own flat case).
    {
        let mut w = World::new(field.world_config());
        let sensors: Vec<NodeId> = positions
            .iter()
            .map(|&p| {
                w.add_node(
                    NodeConfig::sensor(p, field.battery_j),
                    SprSensor::boxed(SprConfig::default()),
                )
            })
            .collect();
        w.add_node(NodeConfig::gateway(sink_pos), SprGateway::boxed());
        w.start();
        for &s in &sensors {
            w.with_behavior::<SprSensor, _>(s, |b, ctx| b.originate(ctx));
        }
        w.run_for(20_000_000);
        record("spr_m1", &w, &sensors);
    }
    rows
}

// --------------------------------------------------------------- E16 --

/// E16 (extension of §5.3's balance objective): energy-aware route
/// selection — among routes within `slack` hops of the minimum, prefer
/// the one whose weakest relay has the most residual battery. Both arms
/// re-discover every round (identical control cost), so the measured
/// differences in lifetime and the paper's `D²` come purely from the
/// data-path choice.
pub fn e16_energy_aware(seed: u64) -> Vec<ReportRow> {
    use wmsn_routing::mlr::MlrConfig;
    let mut rows = Vec::new();
    for slack in [0u32, 2] {
        let n = 50;
        let field = FieldParams {
            battery_j: 4.0,
            ..FieldParams::default_uniform(n, seed)
        };
        let traffic = TrafficParams {
            msgs_per_sensor_per_round: 10,
            ..TrafficParams::default()
        };
        let scen = crate::builder::build_mlr_with(
            &field,
            &GatewayParams::default_three(),
            traffic,
            MlrConfig {
                energy_slack: slack,
                ..MlrConfig::default()
            },
        );
        let sensors = scen.sensors.clone();
        let mut driver = MlrDriver::new(scen).with_table_reset();
        // D² is only comparable at equal elapsed rounds: snapshot the
        // balance after 8 rounds (both arms still fully alive), then run
        // on to first death for the lifetime figure.
        driver.run_rounds(8);
        let d2_at_8 = driver.scenario.world.metrics().energy_d2(&sensors);
        let lt = driver.run_until_first_death(100);
        let m = driver.scenario.world.metrics();
        let cfg_label = format!("slack={slack}");
        rows.push(ReportRow::new(
            "E16",
            &cfg_label,
            "lifetime_rounds",
            lt.lifetime_rounds
                .map(|r| f64::from(r + 8))
                .unwrap_or(f64::NAN),
        ));
        rows.push(ReportRow::new(
            "E16",
            &cfg_label,
            "energy_d2_round8",
            d2_at_8,
        ));
        rows.push(ReportRow::new(
            "E16",
            &cfg_label,
            "delivery_ratio",
            m.delivery_ratio(),
        ));
        rows.push(ReportRow::new(
            "E16",
            &cfg_label,
            "mean_hops",
            m.mean_hops(),
        ));
    }
    rows
}

// ------------------------------------------------------- seed sweeps --

/// Run `f(seed)` for every seed **in parallel** and collect the results
/// in seed order. Simulations are single-threaded and deterministic;
/// sweeps across seeds are embarrassingly parallel, so this is where the
/// workstation's cores go. Work is chunked over scoped threads (one per
/// available core); results land in their seed's slot, so ordering is
/// independent of scheduling.
pub fn parallel_sweep<T, F>(seeds: &[u64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    wmsn_util::pool::parallel_chunked(seeds.len(), workers, |i| f(seeds[i]))
}

/// E17: seed-robustness sweep — MLR delivery ratio and mean hops across
/// independent deployments, reported as mean ± std. Runs the per-seed
/// simulations across all cores via [`parallel_sweep`].
pub fn e17_seed_sweep(seeds: &[u64]) -> Vec<ReportRow> {
    use wmsn_util::stats::Summary;
    let outcomes = parallel_sweep(seeds, |seed| {
        let field = FieldParams {
            battery_j: 10.0,
            ..FieldParams::default_uniform(50, seed)
        };
        let mut d = MlrDriver::new(build_mlr(
            &field,
            &GatewayParams::default_three(),
            TrafficParams::default(),
            0.0,
        ));
        let r = d.run_round();
        let m = d.scenario.world.metrics();
        (r.delivery_ratio(), m.mean_hops(), m.sent_control as f64)
    });
    let mut delivery = Summary::new();
    let mut hops = Summary::new();
    let mut control = Summary::new();
    for (d, h, c) in &outcomes {
        delivery.push(*d);
        hops.push(*h);
        control.push(*c);
    }
    let cfg_label = format!("mlr n=50 seeds={}", seeds.len());
    vec![
        ReportRow::new("E17", &cfg_label, "delivery_mean", delivery.mean()),
        ReportRow::new("E17", &cfg_label, "delivery_std", delivery.std_dev()),
        ReportRow::new("E17", &cfg_label, "mean_hops_mean", hops.mean()),
        ReportRow::new("E17", &cfg_label, "mean_hops_std", hops.std_dev()),
        ReportRow::new("E17", &cfg_label, "control_frames_mean", control.mean()),
        ReportRow::new(
            "E17",
            &cfg_label,
            "delivery_min",
            delivery.min().unwrap_or(0.0),
        ),
    ]
}

// --------------------------------------------------------------- E18 --

/// The alert class the detector bank is expected to raise for each E6
/// attack (`None` for the healthy baseline, which must raise nothing).
/// This is the experiment's ground truth — the monitor itself never
/// sees it.
pub fn expected_alert_class(attack: Attack) -> Option<wmsn_health::AlertKind> {
    use wmsn_health::AlertKind;
    match attack {
        Attack::None => None,
        // Data vanishes into a node that never forwards or delivers.
        Attack::Blackhole | Attack::Sinkhole | Attack::Wormhole | Attack::WormholeGuarded => {
            Some(AlertKind::ForwardAsymmetry)
        }
        Attack::Replay => Some(AlertKind::DuplicateStorm),
        // Both announcer variants are unprompted control floods.
        Attack::FalseAnnounce | Attack::HelloFlood => Some(AlertKind::AnnounceSpike),
    }
}

/// Run one E6 attack cell blind through the health monitor: the monitor
/// is installed as the world's trace sink before start and never told
/// which attack (if any) is running. Returns the outcome and the
/// flushed monitor for fingerprint inspection.
pub fn run_attack_cell_monitored(
    protocol: TargetProtocol,
    attack: Attack,
    seed: u64,
    cfg: wmsn_health::HealthConfig,
) -> (AttackOutcome, wmsn_health::HealthMonitor) {
    let sink = Box::new(wmsn_health::HealthMonitor::with_config(cfg));
    let (outcome, sink) = run_attack_cell_traced(protocol, attack, seed, Some(sink));
    let monitor = sink
        .expect("sink survives the run")
        .as_any()
        .downcast_ref::<wmsn_health::HealthMonitor>()
        .expect("the installed sink is the monitor")
        .clone();
    (outcome, monitor)
}

/// E18: blind attack fingerprinting. Every E6 attack cell (MLR arm) is
/// run with the monitor watching; `detected` is 1 when the expected
/// alert class is raised (for the baseline: when *no* alert is raised).
/// `alerts` counts everything the bank raised in that cell.
pub fn e18_detection(seed: u64) -> Vec<ReportRow> {
    let mut rows = Vec::new();
    for attack in Attack::all() {
        let (out, monitor) = run_attack_cell_monitored(
            TargetProtocol::Mlr,
            attack,
            seed,
            wmsn_health::HealthConfig::default(),
        );
        let classes: std::collections::BTreeSet<wmsn_health::AlertKind> =
            monitor.alerts().iter().map(|a| a.kind).collect();
        let detected = match expected_alert_class(attack) {
            Some(class) => classes.contains(&class),
            None => monitor.alerts().is_empty(),
        };
        let cfg_label = format!("mlr vs {}", attack.label());
        rows.push(ReportRow::new(
            "E18",
            &cfg_label,
            "detected",
            if detected { 1.0 } else { 0.0 },
        ));
        rows.push(ReportRow::new(
            "E18",
            &cfg_label,
            "alerts",
            monitor.alerts().len() as f64,
        ));
        rows.push(ReportRow::new(
            "E18",
            &cfg_label,
            "delivery_ratio",
            out.delivery_ratio,
        ));
    }
    rows
}

/// E18 recovery: E8's gateway-death scenario, but the redirect is
/// monitor-driven instead of scripted. The monitor watches the healthy
/// and failure rounds, raises gateway-silence on the victim, and
/// [`crate::health_loop`] applies the policy's `RemoveGateway` — the
/// experiment never names the victim itself.
pub fn e18_recovery(seed: u64) -> Vec<ReportRow> {
    use wmsn_health::{HealthConfig, HealthMonitor, HealthPolicy};
    let field = FieldParams {
        battery_j: 10.0,
        ..FieldParams::default_uniform(60, seed)
    };
    let mut mlr = MlrDriver::new(build_mlr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
        0.0,
    ));
    mlr.scenario
        .world
        .set_trace_sink(HealthMonitor::boxed(HealthConfig::default()));
    let healthy = mlr.run_round();
    let victim = mlr.scenario.gateways[0];
    mlr.scenario.world.kill(victim);
    let failure = mlr.run_round();
    // The self-healing loop: whatever the monitor flagged, the policy
    // maps to levers. No victim id flows from the script to the repair.
    let policy = HealthPolicy::default();
    let actions = crate::health_loop::drain_actions(&mut mlr.scenario.world, &policy);
    let sensors = mlr.scenario.sensors.clone();
    let gateways = mlr.scenario.gateways.clone();
    let applied =
        crate::health_loop::apply_to_mlr(&mut mlr.scenario.world, &sensors, &gateways, &actions);
    let recovered = mlr.run_round();
    vec![
        ReportRow::new(
            "E18",
            "mlr healthy",
            "delivery_ratio",
            healthy.delivery_ratio(),
        ),
        ReportRow::new(
            "E18",
            "mlr gateway_killed",
            "delivery_ratio",
            failure.delivery_ratio(),
        ),
        ReportRow::new(
            "E18",
            "mlr monitor_recovered",
            "delivery_ratio",
            recovered.delivery_ratio(),
        ),
        ReportRow::new("E18", "mlr recovery", "actions_applied", applied as f64),
    ]
}

/// E18 forensics: the gateway-death MLR run recorded through a
/// checkpointing [`wmsn_health::ForensicCaptureSink`] — a healthy round,
/// the kill, and a failure round, captured with a monitor state
/// checkpoint at every sealed segment and the run's alert JSONL embedded
/// in the capture trailer. This is the capture `wmsn-trace record-e18`
/// writes and the CI windowed-replay parity steps interrogate. Small
/// segments (256 frames) keep the segment directory dense enough that
/// windowed replay demonstrably skips most of the file. Returns the
/// capture stats and the number of alerts the co-hosted monitor raised.
pub fn e18_forensics_capture(
    path: &std::path::Path,
    seed: u64,
) -> (wmsn_trace::CaptureStats, usize) {
    use wmsn_health::{ForensicCaptureSink, HealthConfig};
    let field = FieldParams {
        battery_j: 10.0,
        ..FieldParams::default_uniform(60, seed)
    };
    let mut mlr = MlrDriver::new(build_mlr(
        &field,
        &GatewayParams::default_three(),
        TrafficParams::default(),
        0.0,
    ));
    let sink = ForensicCaptureSink::create(
        path,
        wmsn_trace::CaptureConfig {
            segment_frames: 256,
        },
        HealthConfig::default(),
        1,
    )
    .expect("create forensic capture");
    mlr.scenario.world.set_trace_sink(Box::new(sink));
    mlr.run_round();
    let victim = mlr.scenario.gateways[0];
    mlr.scenario.world.kill(victim);
    mlr.run_round();
    let mut sink = mlr
        .scenario
        .world
        .take_trace_sink()
        .expect("sink installed");
    let f = sink
        .as_any_mut()
        .downcast_mut::<ForensicCaptureSink>()
        .expect("the installed sink is the forensic capture");
    let stats = f.finalize().expect("capture written");
    (stats, f.monitor().alerts().len())
}

/// Event-loop statistics for the simulated E9 kernel at size `n` with a
/// [`wmsn_health::HealthMonitor`] installed as the trace sink — the
/// bench's `monitor-enabled` row. Same workload as [`e9_event_stats`];
/// the delta against it is the monitor's full online-aggregation cost.
pub fn e9_event_stats_monitored(n: usize, seed: u64) -> (u64, usize) {
    let density = 0.02;
    let mut events = 0u64;
    let mut peak = 0usize;
    for scaled in [false, true] {
        let m = if scaled { (n / 50).max(2) } else { 1 };
        let field = FieldParams {
            battery_j: 10.0,
            ..FieldParams::constant_density(n, density, seed)
        };
        let grid = ((m as f64).sqrt().ceil() as usize).max(2);
        let gw = GatewayParams {
            m,
            place_grid: (grid, grid),
            ..GatewayParams::default_three()
        };
        let mut d = SprDriver::new(build_spr(&field, &gw, TrafficParams::default()));
        d.scenario
            .world
            .set_trace_sink(wmsn_health::HealthMonitor::boxed(
                wmsn_health::HealthConfig::default(),
            ));
        d.run_round();
        events += d.scenario.world.events_processed();
        peak = peak.max(d.scenario.world.peak_queue_depth());
    }
    (events, peak)
}

/// [`e9_event_stats_monitored`] through the ring pipeline: the monitor
/// sits downstream of a [`wmsn_trace::RingSink`], so the sim thread
/// only copies `TraceEvent` frames into the ring and the detector bank
/// runs on the drain thread. Same workload, same events, same monitor
/// state at the end (the take-time flush barrier guarantees it) —
/// the wall-time delta against [`e9_event_stats`] is what monitoring
/// costs *the simulation thread* under this pipeline. Also returns the
/// aggregate ring telemetry (counters summed over the two gateway
/// configurations, peak occupancy maxed).
pub fn e9_event_stats_monitored_ring(n: usize, seed: u64) -> (u64, usize, wmsn_trace::RingStats) {
    let density = 0.02;
    let mut events = 0u64;
    let mut peak = 0usize;
    let mut agg = wmsn_trace::RingStats::default();
    for scaled in [false, true] {
        let m = if scaled { (n / 50).max(2) } else { 1 };
        let field = FieldParams {
            battery_j: 10.0,
            ..FieldParams::constant_density(n, density, seed)
        };
        let grid = ((m as f64).sqrt().ceil() as usize).max(2);
        let gw = GatewayParams {
            m,
            place_grid: (grid, grid),
            ..GatewayParams::default_three()
        };
        let mut d = SprDriver::new(build_spr(&field, &gw, TrafficParams::default()));
        d.scenario.world.set_trace_sink(wmsn_trace::RingSink::boxed(
            wmsn_trace::RingConfig::default(),
            vec![Box::new(wmsn_health::HealthMonitor::with_config(
                wmsn_health::HealthConfig::default(),
            ))],
        ));
        d.run_round();
        events += d.scenario.world.events_processed();
        peak = peak.max(d.scenario.world.peak_queue_depth());
        // take_trace_sink flushes — for a RingSink that is the barrier,
        // so the drain-side monitor is complete before the sink drops.
        let mut sink = d
            .scenario
            .world
            .take_trace_sink()
            .expect("ring sink installed");
        let ring = sink
            .as_any_mut()
            .downcast_mut::<wmsn_trace::RingSink>()
            .expect("the installed sink is the ring");
        let s = ring.stats();
        agg.frames_written += s.frames_written;
        agg.frames_dropped += s.frames_dropped;
        agg.blocked_us += s.blocked_us;
        agg.peak_chunks = agg.peak_chunks.max(s.peak_chunks);
        agg.capacity_chunks = s.capacity_chunks;
        agg.chunk_frames = s.chunk_frames;
    }
    (events, peak, agg)
}

/// [`run_attack_cell_monitored`] through the ring pipeline: the blind
/// monitor is fed from the drain thread instead of inline. The returned
/// monitor is finalized after the flush barrier — the same point in
/// the event stream where the inline variant's take-time flush
/// finalizes it — so its alert stream is byte-identical to inline
/// mode's (pinned by the `trace_pipeline` integration test).
pub fn run_attack_cell_monitored_ring(
    protocol: TargetProtocol,
    attack: Attack,
    seed: u64,
    cfg: wmsn_health::HealthConfig,
) -> (
    AttackOutcome,
    wmsn_health::HealthMonitor,
    wmsn_trace::RingStats,
) {
    let ring = wmsn_trace::RingSink::boxed(
        wmsn_trace::RingConfig::default(),
        vec![Box::new(wmsn_health::HealthMonitor::with_config(cfg))],
    );
    let (outcome, sink) = run_attack_cell_traced(protocol, attack, seed, Some(ring));
    let mut sink = sink.expect("sink survives the run");
    let ring = sink
        .as_any_mut()
        .downcast_mut::<wmsn_trace::RingSink>()
        .expect("the installed sink is the ring");
    let stats = ring.stats();
    let monitor = ring
        .with_sink_mut::<wmsn_health::HealthMonitor, _>(|m| {
            m.finalize();
            m.clone()
        })
        .expect("the ring drains into the monitor");
    (outcome, monitor, stats)
}

/// Inline-monitored large round on the reference kernel: the
/// [`wmsn_health::HealthMonitor`] installed directly as the world's
/// trace sink, so every `observe()` runs on the simulation thread —
/// the best monitored configuration available before the ring
/// pipeline (the sharded kernel cannot host an inline monitor: its
/// detectors need the causally merged stream). The bench times this as
/// the `e9_n100k_sim_monitored` row's built-in baseline.
pub fn e9_large_monitored_inline(n: usize, seed: u64, sources: usize) -> E9LargeSummary {
    let (mut scen, base) = e9_large_scenario(n, seed);
    scen.world.set_unicast_fast_path(true);
    scen.world.set_trace_sink(wmsn_health::HealthMonitor::boxed(
        wmsn_health::HealthConfig::default(),
    ));
    e9_large_round(&mut scen, base, sources)
}

/// Monitored large-scale round: the sharded kernel with one ring
/// pipeline per shard buffering `(at, key, event)` frames off the
/// simulation threads, then a single [`wmsn_health::HealthMonitor`]
/// consuming the causally merged stream. The merge order is the
/// reference emission order, so the monitor's verdicts are
/// deterministic and kernel-independent — the detector bank never has
/// to reason about shard interleaving. With `parallel = None` the
/// reference kernel runs with one ring draining straight into the
/// monitor (no merge step needed: a single stream is already in
/// order).
///
/// With `capture_dir = Some(dir)` the trace stream is additionally (or,
/// on the sharded kernel, *instead of* being buffered in memory)
/// streamed to segmented capture files under `dir`: the reference
/// kernel's single ring drains into the monitor and a
/// [`wmsn_trace::CaptureSink`] side by side (`capture.wcap`), while the
/// sharded kernel writes one `shard-<i>.wcap` per shard from its drain
/// threads and the monitor consumes the k-way
/// [`wmsn_trace::merge_captures_with`] merge of those files — same
/// causal order as the in-memory merge, so the alert stream is
/// unchanged, but peak memory drops from every-frame-resident to one
/// segment per shard.
///
/// Returns the round summary, the aggregate ring telemetry, the total
/// alerts the monitor raised, and the capture telemetry when a
/// `capture_dir` was given.
pub fn e9_large_monitored(
    n: usize,
    seed: u64,
    sources: usize,
    parallel: Option<ParallelConfig>,
    capture_dir: Option<&std::path::Path>,
) -> (
    E9LargeSummary,
    wmsn_trace::RingStats,
    u64,
    Option<wmsn_trace::CaptureStats>,
) {
    let (mut scen, base) = e9_large_scenario(n, seed);
    scen.world.set_unicast_fast_path(true);
    match parallel {
        None => {
            let mut sinks: Vec<Box<dyn wmsn_trace::TraceSink + Send>> = vec![Box::new(
                wmsn_health::HealthMonitor::with_config(wmsn_health::HealthConfig::default()),
            )];
            if let Some(dir) = capture_dir {
                let sink = wmsn_trace::CaptureSink::create(
                    dir.join("capture.wcap"),
                    wmsn_trace::CaptureConfig::default(),
                )
                .expect("create capture file");
                sinks.push(Box::new(sink));
            }
            scen.world.set_trace_sink(wmsn_trace::RingSink::boxed(
                wmsn_trace::RingConfig::default(),
                sinks,
            ));
            let summary = e9_large_round(&mut scen, base, sources);
            let mut sink = scen.world.take_trace_sink().expect("ring sink installed");
            let ring = sink
                .as_any_mut()
                .downcast_mut::<wmsn_trace::RingSink>()
                .expect("the installed sink is the ring");
            let stats = ring.stats();
            let alerts = ring
                .with_sink_mut::<wmsn_health::HealthMonitor, _>(|m| {
                    m.finalize();
                    m.alerts().len() as u64
                })
                .expect("the ring drains into the monitor");
            let cap = capture_dir.map(|_| {
                ring.with_sink_mut::<wmsn_trace::CaptureSink, _>(|c| {
                    c.set_frames_dropped(stats.frames_dropped);
                    c.finalize()
                })
                .expect("the ring drains into the capture sink")
                .expect("capture finalizes cleanly")
            });
            (summary, stats, alerts, cap)
        }
        Some(p) => {
            let mut positions = scen.sensor_positions.clone();
            positions.extend_from_slice(&scen.gateway_positions);
            positions.push(scen.world.node(base).pos);
            let assignment = strip_shards(&positions, scen.range_m, p.shards);
            let mut scen = scen.map_world(|w| ShardedWorld::from_world(w, assignment, p.threads));
            let mut monitor =
                wmsn_health::HealthMonitor::with_config(wmsn_health::HealthConfig::default());
            if let Some(dir) = capture_dir {
                let paths = scen
                    .world
                    .install_capture_sinks(
                        wmsn_trace::RingConfig::default(),
                        wmsn_trace::CaptureConfig::default(),
                        dir,
                    )
                    .expect("create per-shard capture files");
                let summary = e9_large_round(&mut scen, base, sources);
                let (stats, cap) = scen
                    .world
                    .finish_capture_sinks()
                    .expect("capture sinks installed and finalized");
                // One streamed pass over the k-way merge of the shard
                // captures, in the same causal order the in-memory
                // merge produces: one segment per shard resident.
                let mut cursors: Vec<_> = paths
                    .iter()
                    .map(|p| wmsn_trace::CaptureCursor::open(p).expect("open shard capture"))
                    .collect();
                wmsn_trace::merge_captures_with(&mut cursors, |ev| monitor.observe(ev))
                    .expect("merge shard captures");
                monitor.finalize();
                (summary, stats, monitor.alerts().len() as u64, Some(cap))
            } else {
                scen.world
                    .install_ring_sinks(wmsn_trace::RingConfig::default());
                let summary = e9_large_round(&mut scen, base, sources);
                let (frames, stats) = scen
                    .world
                    .finish_ring_frames()
                    .expect("ring sinks installed");
                // One streamed pass in the merged causal order: the monitor
                // only needs the order, not a materialised gigabyte-scale
                // merged Vec.
                wmsn_trace::merge_keyed_events_with(frames, |ev| monitor.observe(ev));
                monitor.finalize();
                (summary, stats, monitor.alerts().len() as u64, None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::find_value;

    #[test]
    fn e1_reproduces_fig2_exactly() {
        let rows = e1_fig2();
        for k in 1..=4 {
            let paper_a = find_value(&rows, &format!("fig2a S{k}"), "hops_paper").unwrap();
            let meas_a = find_value(&rows, &format!("fig2a S{k}"), "hops_measured").unwrap();
            assert_eq!(paper_a, meas_a, "fig2a S{k}");
            let paper_b = find_value(&rows, &format!("fig2b S{k}"), "hops_paper").unwrap();
            let meas_b = find_value(&rows, &format!("fig2b S{k}"), "hops_measured").unwrap();
            assert_eq!(paper_b, meas_b, "fig2b S{k}");
        }
    }

    #[test]
    fn e1_random_fields_show_the_multi_gateway_collapse() {
        let rows = e1_random_fields(&[300], 7);
        let m1 = find_value(&rows, "n=300 m=1", "mean_hops").unwrap();
        let m3 = find_value(&rows, "n=300 m=3", "mean_hops").unwrap();
        assert!(
            m3 < m1 * 0.8,
            "three gateways should cut mean hops well below one sink: {m1} → {m3}"
        );
    }

    #[test]
    fn e2_simulation_matches_table1() {
        let rows = e2_table1();
        for round in 1..=3usize {
            let sel = find_value(&rows, &format!("round {round}"), "selected_place_id").unwrap();
            assert_eq!(
                sel as usize,
                TABLE1_SELECTED[round - 1],
                "round {round} selected place"
            );
            let hops = find_value(&rows, &format!("round {round}"), "selected_hops").unwrap();
            let paper = find_value(&rows, &format!("round {round}"), "paper_hops").unwrap();
            assert_eq!(hops, paper, "round {round} hops");
        }
        // Table grows: 3 entries after round 1, 4 after round 2, 5 after 3.
        assert_eq!(find_value(&rows, "round 1", "table_entries"), Some(3.0));
        assert_eq!(find_value(&rows, "round 2", "table_entries"), Some(4.0));
        assert_eq!(find_value(&rows, "round 3", "table_entries"), Some(5.0));
    }

    #[test]
    fn e5_incremental_beats_reset() {
        let rows = e5_overhead(7, 5);
        let inc = find_value(&rows, "incremental", "control_frames_steady_state").unwrap();
        let rst = find_value(&rows, "reset_each_round", "control_frames_steady_state").unwrap();
        assert!(
            rst > inc.max(1.0) * 3.0,
            "incremental tables must slash steady-state control traffic: {inc} vs {rst}"
        );
        let inc_ratio = find_value(&rows, "incremental", "delivery_ratio").unwrap();
        assert!(inc_ratio > 0.9);
    }

    #[test]
    fn parallel_sweep_matches_serial_execution() {
        let seeds: Vec<u64> = (1..=6).collect();
        let parallel = parallel_sweep(&seeds, |s| {
            let field = FieldParams::default_uniform(20, s);
            let scen = crate::builder::build_spr(
                &field,
                &GatewayParams::default_three(),
                TrafficParams::default(),
            );
            scen.sensor_positions.len() as u64 + scen.gateway_positions.len() as u64 + s
        });
        let serial: Vec<u64> = seeds
            .iter()
            .map(|&s| {
                let field = FieldParams::default_uniform(20, s);
                let scen = crate::builder::build_spr(
                    &field,
                    &GatewayParams::default_three(),
                    TrafficParams::default(),
                );
                scen.sensor_positions.len() as u64 + scen.gateway_positions.len() as u64 + s
            })
            .collect();
        assert_eq!(
            parallel, serial,
            "sweep must preserve order and determinism"
        );
    }

    #[test]
    fn e17_all_seeds_deliver() {
        let rows = e17_seed_sweep(&[1, 2, 3, 4]);
        let min = crate::report::find_value(&rows, "seeds=4", "delivery_min").unwrap();
        assert!(min > 0.9, "worst seed delivery {min}");
        let std = crate::report::find_value(&rows, "seeds=4", "delivery_std").unwrap();
        assert!(std < 0.1);
    }

    #[test]
    fn e10_alpha_reduces_imbalance() {
        let rows = e10_load_balance(3);
        let i0 = find_value(&rows, "alpha=0", "load_imbalance").unwrap();
        let i4 = find_value(&rows, "alpha=4", "load_imbalance").unwrap();
        assert!(
            i4 < i0,
            "load-aware selection must spread the hot spot: {i0} → {i4}"
        );
        assert!(find_value(&rows, "alpha=4", "delivery_ratio").unwrap() > 0.85);
    }
}
