//! Windowed health forensics over segmented captures.
//!
//! Three capabilities, all built on the capture extension block
//! (`wmsn_trace::capture`) and the checkpoint codec
//! ([`crate::checkpoint`]):
//!
//! 1. [`ForensicCaptureSink`] — a capture sink that co-hosts the
//!    detector bank: every frame is observed by a [`HealthMonitor`]
//!    *before* it is written, a state checkpoint is embedded at
//!    segment boundaries, and the finished capture carries the run's
//!    alert JSONL. The embedded alerts are byte-identical to an
//!    offline replay of the same capture (the monitor sees exactly
//!    the frames the file holds, and flush barriers do not finalize
//!    the detector bank — same rule as the ring pipeline).
//! 2. [`replay_window`] — resume the detector bank from the newest
//!    eligible checkpoint and replay only the segments a `[lo, hi]`
//!    time window needs, in O(one segment) memory. Alert verdicts
//!    inside the window are **byte-identical** to a full replay from
//!    t=0:
//!    with `W = window_us`, let `w0 = ⌈lo/W⌉ - 1` (0 for `lo = 0`) —
//!    the first window whose close can be stamped `≥ lo`. A
//!    checkpoint at segment `k` is eligible iff the last event before
//!    it lands in a window `≤ w0` (checked via `segments[k-1].at_max`).
//!    Every alert raised before such a checkpoint was stamped at a
//!    close `≤ w0·W < lo` (strict by minimality of `w0`), so the
//!    window filter discards it from the full replay too; every close
//!    stamped `≥ lo` is still pending at the checkpoint and replays
//!    from identical state, latches included.
//! 3. [`compact_capture`] — rewrite a capture under a retention
//!    policy: recent segments and alert-adjacent windows keep their
//!    frames (copied verbatim), everything older is reduced to its
//!    directory summary, with a checkpoint embedded at the start of
//!    every retained run so windowed replay and `explain` still work.
//!    Index-only queries stay exact; frame reads into compacted
//!    ranges fail loudly at the capture layer.

use crate::alert::HealthAlert;
use crate::checkpoint::{restore, snapshot};
use crate::monitor::{HealthConfig, HealthMonitor};
use crate::AlertKind;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fs::File;
use std::io::{BufWriter, Read, Seek};
use std::path::{Path, PathBuf};
use wmsn_trace::{
    CaptureConfig, CaptureReader, CaptureStats, CaptureWriter, ScanFilter, TraceEvent, TraceKind,
    TraceSink, TraceTier,
};

// ------------------------------------------------- checkpointing sink --

/// File-backed capture sink that co-hosts the detector bank and embeds
/// its checkpoints and alerts in the capture (see module docs). Install
/// wherever a `CaptureSink` goes; like every sink, write errors latch
/// and [`ForensicCaptureSink::finalize`] then reports `None`.
pub struct ForensicCaptureSink {
    w: Option<CaptureWriter<BufWriter<File>>>,
    monitor: HealthMonitor,
    path: PathBuf,
    /// Snapshot at every `checkpoint_every`-th segment boundary.
    checkpoint_every: u64,
    failed: bool,
    stats: Option<CaptureStats>,
}

impl ForensicCaptureSink {
    /// Create (truncating) a checkpointing capture at `path`.
    /// `checkpoint_every = 1` snapshots at every segment boundary.
    pub fn create(
        path: impl Into<PathBuf>,
        capture: CaptureConfig,
        health: HealthConfig,
        checkpoint_every: u64,
    ) -> std::io::Result<ForensicCaptureSink> {
        let path = path.into();
        let w = CaptureWriter::new(BufWriter::new(File::create(&path)?), capture)?;
        Ok(ForensicCaptureSink {
            w: Some(w),
            monitor: HealthMonitor::with_config(health),
            path,
            checkpoint_every: checkpoint_every.max(1),
            failed: false,
            stats: None,
        })
    }

    /// The capture file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The co-hosted monitor (read-only; finalized at
    /// [`ForensicCaptureSink::finalize`] time, not before).
    pub fn monitor(&self) -> &HealthMonitor {
        &self.monitor
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.w.as_ref().map_or(0, CaptureWriter::frames_written)
    }

    /// Record the producer-side ring drop count in the trailer.
    pub fn set_frames_dropped(&mut self, n: u64) {
        if let Some(w) = &mut self.w {
            w.set_frames_dropped(n);
        }
    }

    /// Finalize the monitor, embed its alert JSONL, and write the
    /// extension block + directory + trailer (idempotent). `None` if
    /// any write failed.
    pub fn finalize(&mut self) -> Option<CaptureStats> {
        if let Some(mut w) = self.w.take() {
            self.monitor.finalize();
            w.set_alerts_jsonl(self.monitor.alerts_jsonl());
            match w.finish() {
                Ok((_, stats)) if !self.failed => self.stats = Some(stats),
                _ => self.failed = true,
            }
        }
        self.stats
    }
}

impl Drop for ForensicCaptureSink {
    fn drop(&mut self) {
        let _ = self.finalize();
    }
}

impl TraceSink for ForensicCaptureSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.record_keyed(ev, ev.t(), 0);
    }
    fn record_keyed(&mut self, ev: &TraceEvent, at: u64, key: u64) {
        if self.failed {
            return;
        }
        // Observe BEFORE pushing: when this push seals segment k-1 the
        // monitor has digested exactly segments [0..k) — the invariant
        // the checkpoint label encodes.
        self.monitor.observe(ev);
        if let Some(w) = &mut self.w {
            match w.push(ev, at, key) {
                Ok(true) => {
                    let sealed = w.segments_sealed();
                    if sealed % self.checkpoint_every == 0 {
                        w.add_checkpoint(sealed, snapshot(&self.monitor));
                    }
                }
                Ok(false) => {}
                Err(_) => self.failed = true,
            }
        }
    }
    fn flush(&mut self) {
        // Flush buffered frames only. Deliberately does NOT finalize
        // the monitor: flush barriers must not perturb detector state,
        // or the embedded alert stream would diverge from an offline
        // replay (the ring pipeline pins the same rule).
        if let Some(w) = &mut self.w {
            let _ = w.flush();
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// --------------------------------------------------- windowed replay --

/// How a windowed replay actually executed — the O(window) evidence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowReplayStats {
    /// Segment index of the checkpoint resumed from (`None` = genesis).
    pub checkpoint_seg: Option<u64>,
    /// Segments whose frames were decoded.
    pub segments_read: u64,
    /// Segments in the capture.
    pub segments_total: u64,
    /// Frames fed to the detector bank.
    pub frames_decoded: u64,
}

/// Replay the detector bank over the time window `[lo, hi]`, resuming
/// from the newest eligible checkpoint (see module docs for the
/// correctness argument). Returns the monitor — its alerts filtered to
/// `lo <= t <= hi` are byte-identical to a full replay filtered the
/// same way — plus the replay stats. `full_scan` forces a genesis
/// replay (the parity baseline). `cfg` seeds the genesis monitor; a
/// checkpoint carries its own config.
pub fn replay_window<R: Read + Seek>(
    r: &mut CaptureReader<R>,
    lo: u64,
    hi: u64,
    cfg: HealthConfig,
    full_scan: bool,
) -> Result<(HealthMonitor, WindowReplayStats), String> {
    replay_window_with(r, lo, hi, cfg, full_scan, |_, _| {})
}

/// [`replay_window`] with a per-frame observer (the `explain`
/// accounting hook): called with every frame fed to the monitor, in
/// order.
pub fn replay_window_with<R: Read + Seek, F: FnMut(&TraceEvent, u64)>(
    r: &mut CaptureReader<R>,
    lo: u64,
    hi: u64,
    cfg: HealthConfig,
    full_scan: bool,
    mut observer: F,
) -> Result<(HealthMonitor, WindowReplayStats), String> {
    if lo > hi {
        return Err(format!("empty window: {lo} > {hi}"));
    }
    let window_us = cfg.window_us.max(1);
    let n = r.segments().len();
    // Segments past the window cannot influence any close stamped
    // <= hi (their events open strictly later windows).
    let end = r
        .segments()
        .iter()
        .rposition(|m| m.at_min <= hi)
        .map_or(0, |i| i + 1);
    // First window whose close can be stamped >= lo.
    let w0 = if lo == 0 { 0 } else { (lo - 1) / window_us };
    let mut start = 0usize;
    let mut monitor = HealthMonitor::with_config(cfg);
    let mut checkpoint_seg = None;
    if !full_scan {
        for (seg, blob) in r.checkpoints() {
            let k = *seg as usize;
            // Eligible: the checkpoint's last digested event closed a
            // window <= w0, so every close stamped >= lo is still
            // pending. Take the newest such checkpoint.
            let eligible =
                k >= 1 && k <= n && k > start && r.segments()[k - 1].at_max / window_us <= w0;
            if eligible && k <= end {
                let m = restore(blob)?;
                start = k;
                monitor = m;
                checkpoint_seg = Some(*seg);
            }
        }
    }
    let stats = r.scan_range(start..end, &ScanFilter::all(), |ev, at, _| {
        monitor.observe(ev);
        observer(ev, at);
    })?;
    monitor.finalize();
    Ok((
        monitor,
        WindowReplayStats {
            checkpoint_seg,
            segments_read: stats.segments_scanned,
            segments_total: n as u64,
            frames_decoded: stats.frames_decoded,
        },
    ))
}

/// The alerts of `monitor` stamped inside `[lo, hi]` — the windowed
/// verdict set both replay modes must agree on byte-for-byte.
pub fn alerts_in_window(monitor: &HealthMonitor, lo: u64, hi: u64) -> Vec<HealthAlert> {
    monitor
        .alerts()
        .iter()
        .copied()
        .filter(|a| a.t >= lo && a.t <= hi)
        .collect()
}

// ----------------------------------------------------------- explain --

/// Per-window network activity across an explain window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowPoint {
    /// Frames transmitted.
    pub tx: u64,
    /// Frames received intact.
    pub rx: u64,
    /// Messages forwarded.
    pub forwards: u64,
    /// Messages delivered.
    pub delivers: u64,
    /// Receptions dropped.
    pub drops: u64,
    /// Events mentioning the alert subject.
    pub subject_events: u64,
}

/// Deterministic provenance accounting for one alert: who contributed
/// to the detector's evidence inside the alert window, which sequence
/// numbers / flows are implicated, and what the network was doing
/// window by window. Built by [`explain_alert`]; all aggregation is
/// over ordered maps, so the rendered report is byte-deterministic.
pub struct AlertForensics {
    /// The alert being explained.
    pub alert: HealthAlert,
    /// Window start (µs, inclusive).
    pub lo: u64,
    /// Window end (µs, inclusive) — the alert's stamp.
    pub hi: u64,
    /// Whether the windowed replay re-raised this exact alert.
    pub reproduced: bool,
    /// Detector-specific contribution counts per node (see
    /// [`AlertForensics::observe`] for the per-kind accounting rules).
    pub contributors: BTreeMap<u64, u64>,
    /// Implicated frame sequence numbers, first-seen order, bounded.
    pub offending_seqs: Vec<u64>,
    /// Implicated `(origin, msg_id)` flows, first-seen order, bounded.
    pub offending_msgs: Vec<(u64, u64)>,
    /// Per-window activity, keyed by window index.
    pub series: BTreeMap<u64, WindowPoint>,
    window_us: u64,
    /// seq → announcing src inside the window (keyed lookups only).
    seq_src: HashMap<u64, u64>,
    /// Window-local forward/deliver dedup for duplicate attribution.
    seen_forwards: HashSet<(u64, u64, u64)>,
    seen_delivers: HashSet<(u64, u64)>,
}

/// Offender lists stop growing here; the counts keep accumulating.
const MAX_OFFENDERS: usize = 16;

impl AlertForensics {
    fn new(alert: HealthAlert, lo: u64, hi: u64, window_us: u64) -> AlertForensics {
        AlertForensics {
            alert,
            lo,
            hi,
            reproduced: false,
            contributors: BTreeMap::new(),
            offending_seqs: Vec::new(),
            offending_msgs: Vec::new(),
            series: BTreeMap::new(),
            window_us: window_us.max(1),
            seq_src: HashMap::new(),
            seen_forwards: HashSet::new(),
            seen_delivers: HashSet::new(),
        }
    }

    fn bump(&mut self, node: u64) {
        *self.contributors.entry(node).or_insert(0) += 1;
    }

    fn offending_seq(&mut self, seq: u64) {
        if self.offending_seqs.len() < MAX_OFFENDERS && !self.offending_seqs.contains(&seq) {
            self.offending_seqs.push(seq);
        }
    }

    fn offending_msg(&mut self, origin: u64, msg_id: u64) {
        if self.offending_msgs.len() < MAX_OFFENDERS
            && !self.offending_msgs.contains(&(origin, msg_id))
        {
            self.offending_msgs.push((origin, msg_id));
        }
    }

    /// Fold one replayed event into the accounting. Events outside
    /// `[lo, hi]` only warm the seq→src table (they may announce a
    /// frame the subject receives inside the window).
    ///
    /// Contribution rules by detector:
    /// - `forward_asymmetry` / `backbone_asymmetry`: the sources of
    ///   the frames the subject absorbed (linked seq → announcing tx).
    /// - `gateway_silence`: the nodes whose forwards prove the network
    ///   stayed active through the silence.
    /// - `base_silence`: the nodes whose mesh-tier data transmissions
    ///   prove the backbone stayed active.
    /// - `duplicate_storm`: the nodes re-forwarding / re-delivering an
    ///   already-seen flow inside the window.
    /// - `announce_spike`: the subject's own control broadcasts.
    /// - `load_imbalance`: every delivering gateway (the skew base).
    /// - `energy_depletion`: the subject's energy reports.
    fn observe(&mut self, ev: &TraceEvent) {
        let t = ev.t();
        if let TraceEvent::TxStart { seq, src, .. } = *ev {
            self.seq_src.insert(seq, u64::from(src.0));
        }
        if t < self.lo || t > self.hi {
            return;
        }
        let subject = self.alert.subject;
        let w = t / self.window_us;
        let point = self.series.entry(w).or_default();
        match *ev {
            TraceEvent::TxStart { src, .. } => {
                point.tx += 1;
                if u64::from(src.0) == subject {
                    point.subject_events += 1;
                }
            }
            TraceEvent::Rx { node, .. } => {
                point.rx += 1;
                if u64::from(node.0) == subject {
                    point.subject_events += 1;
                }
            }
            TraceEvent::Forward { node, .. } => {
                point.forwards += 1;
                if u64::from(node.0) == subject {
                    point.subject_events += 1;
                }
            }
            TraceEvent::Deliver { node, .. } => {
                point.delivers += 1;
                if u64::from(node.0) == subject {
                    point.subject_events += 1;
                }
            }
            TraceEvent::Drop { node, .. } => {
                point.drops += 1;
                if u64::from(node.0) == subject {
                    point.subject_events += 1;
                }
            }
            _ => {}
        }
        match self.alert.kind {
            AlertKind::ForwardAsymmetry | AlertKind::BackboneAsymmetry => {
                if let TraceEvent::Rx { seq, node, .. } = *ev {
                    if u64::from(node.0) == subject {
                        self.offending_seq(seq);
                        if let Some(&src) = self.seq_src.get(&seq) {
                            self.bump(src);
                        }
                    }
                }
            }
            AlertKind::GatewaySilence => {
                if let TraceEvent::Forward {
                    node,
                    origin,
                    msg_id,
                    ..
                } = *ev
                {
                    self.bump(u64::from(node.0));
                    self.offending_msg(u64::from(origin.0), msg_id);
                }
            }
            AlertKind::BaseSilence => {
                if let TraceEvent::TxStart {
                    seq,
                    src,
                    tier: TraceTier::Mesh,
                    kind: TraceKind::Data,
                    ..
                } = *ev
                {
                    self.bump(u64::from(src.0));
                    self.offending_seq(seq);
                }
            }
            AlertKind::DuplicateStorm => match *ev {
                TraceEvent::Forward {
                    node,
                    origin,
                    msg_id,
                    ..
                } => {
                    let key = (u64::from(node.0), u64::from(origin.0), msg_id);
                    if !self.seen_forwards.insert(key) {
                        self.bump(u64::from(node.0));
                        self.offending_msg(u64::from(origin.0), msg_id);
                    }
                }
                TraceEvent::Deliver {
                    node,
                    origin,
                    msg_id,
                    ..
                } => {
                    let key = (u64::from(origin.0), msg_id);
                    if !self.seen_delivers.insert(key) {
                        self.bump(u64::from(node.0));
                        self.offending_msg(u64::from(origin.0), msg_id);
                    }
                }
                _ => {}
            },
            AlertKind::AnnounceSpike => {
                if let TraceEvent::TxStart {
                    seq,
                    src,
                    dst: None,
                    kind: TraceKind::Control,
                    ..
                } = *ev
                {
                    if u64::from(src.0) == subject {
                        self.bump(subject);
                        self.offending_seq(seq);
                    }
                }
            }
            AlertKind::LoadImbalance => {
                if let TraceEvent::Deliver {
                    node,
                    origin,
                    msg_id,
                    ..
                } = *ev
                {
                    self.bump(u64::from(node.0));
                    if u64::from(node.0) == subject {
                        self.offending_msg(u64::from(origin.0), msg_id);
                    }
                }
            }
            AlertKind::EnergyDepletion => {
                if let TraceEvent::Energy { node, .. } = *ev {
                    if u64::from(node.0) == subject {
                        self.bump(subject);
                    }
                }
            }
        }
    }

    /// Render the provenance report — byte-deterministic (ordered
    /// maps, fixed formatting), so checkpoint and full-scan replays
    /// `cmp` equal.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("alert {}\n", self.alert.to_json()));
        out.push_str(&format!(
            "window {}..{} us ({} windows of {} us)\n",
            self.lo,
            self.hi,
            self.hi / self.window_us - self.lo / self.window_us + 1,
            self.window_us
        ));
        out.push_str(if self.reproduced {
            "verdict reproduced in windowed replay\n"
        } else {
            "verdict NOT reproduced in windowed replay\n"
        });
        let mut ranked: Vec<(u64, u64)> = self.contributors.iter().map(|(&n, &c)| (n, c)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.push_str(&format!(
            "contributors ({}) ranked by {} evidence:\n",
            ranked.len(),
            self.alert.kind.as_str()
        ));
        for (node, count) in ranked {
            out.push_str(&format!("  node {node}: {count}\n"));
        }
        if !self.offending_seqs.is_empty() {
            let seqs: Vec<String> = self.offending_seqs.iter().map(|s| s.to_string()).collect();
            out.push_str(&format!("offending seqs: {}\n", seqs.join(", ")));
        }
        if !self.offending_msgs.is_empty() {
            let msgs: Vec<String> = self
                .offending_msgs
                .iter()
                .map(|(o, m)| format!("{o}/{m}"))
                .collect();
            out.push_str(&format!(
                "offending flows (origin/msg): {}\n",
                msgs.join(", ")
            ));
        }
        out.push_str("series (per window):\n");
        for (&w, p) in &self.series {
            out.push_str(&format!(
                "  w{} [{}..{}): tx={} rx={} forwards={} delivers={} drops={} subject={}\n",
                w,
                w * self.window_us,
                (w + 1) * self.window_us,
                p.tx,
                p.rx,
                p.forwards,
                p.delivers,
                p.drops,
                p.subject_events
            ));
        }
        out
    }
}

/// Explain one alert: windowed-replay the `span_windows` aggregation
/// windows leading up to its stamp and build the provenance report.
/// `full_scan` forces the genesis-replay baseline; both modes render
/// byte-identical reports (CI `cmp`-gates this).
pub fn explain_alert<R: Read + Seek>(
    r: &mut CaptureReader<R>,
    alert: HealthAlert,
    span_windows: u64,
    cfg: HealthConfig,
    full_scan: bool,
) -> Result<(AlertForensics, WindowReplayStats), String> {
    let window_us = cfg.window_us.max(1);
    let lo = alert
        .t
        .saturating_sub(span_windows.saturating_mul(window_us));
    let hi = alert.t;
    let mut f = AlertForensics::new(alert, lo, hi, window_us);
    let (monitor, stats) = replay_window_with(r, lo, hi, cfg, full_scan, |ev, _| f.observe(ev))?;
    f.reproduced = monitor.alerts().contains(&alert);
    Ok((f, stats))
}

// -------------------------------------------------------- compaction --

/// What [`compact_capture`] keeps at frame granularity.
#[derive(Clone, Copy, Debug)]
pub struct CompactionPolicy {
    /// Always keep the frames of the newest N segments.
    pub keep_last: usize,
    /// Keep every segment overlapping `[t - span·window, t]` around
    /// each alert `t` (the same span `explain` replays by default).
    pub alert_span_windows: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            keep_last: 8,
            alert_span_windows: 4,
        }
    }
}

/// Compaction telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Segments in the input.
    pub segments_total: u64,
    /// Segments whose frames were kept.
    pub segments_retained: u64,
    /// Segments reduced to directory summaries.
    pub segments_compacted: u64,
    /// Frames kept.
    pub frames_retained: u64,
    /// Frames removed (still counted in the index).
    pub frames_compacted: u64,
    /// Checkpoints embedded (one per retained run needing one).
    pub checkpoints: u64,
    /// Alerts embedded.
    pub alerts: u64,
}

/// Rewrite the capture at `input` into `output` under `policy`:
/// replay the detector bank once to find the alerts, keep frames for
/// the last [`CompactionPolicy::keep_last`] segments plus every
/// alert-adjacent window, reduce the rest to directory summaries, and
/// embed the full alert JSONL plus a checkpoint at the start of every
/// retained run (so `health --window` / `explain` still answer over
/// retained ranges). The input must not itself be compacted: the
/// replay needs every frame.
pub fn compact_capture(
    input: &Path,
    output: &Path,
    cfg: HealthConfig,
    policy: CompactionPolicy,
) -> Result<CompactionStats, String> {
    let mut r = CaptureReader::open(input)?;
    let n = r.segments().len();
    if r.segments().iter().any(|m| m.is_compacted()) {
        return Err(
            "input capture is already compacted: cannot replay its detector history".into(),
        );
    }
    let window_us = cfg.window_us.max(1);

    // Pass 1a: full replay → the alert set that drives retention.
    let mut monitor = HealthMonitor::with_config(cfg);
    r.scan(&ScanFilter::all(), |ev, _, _| monitor.observe(ev))?;
    monitor.finalize();

    // Retention: newest keep_last segments + alert-adjacent windows.
    let mut retained: BTreeSet<usize> = (n.saturating_sub(policy.keep_last)..n).collect();
    for a in monitor.alerts() {
        let wlo =
            a.t.saturating_sub(policy.alert_span_windows.saturating_mul(window_us));
        let whi = a.t;
        for (idx, m) in r.segments().iter().enumerate() {
            if m.at_max >= wlo && m.at_min <= whi {
                retained.insert(idx);
            }
        }
    }
    // A checkpoint at the start of every retained run that does not
    // begin at genesis.
    let starts: BTreeSet<usize> = retained
        .iter()
        .copied()
        .filter(|&idx| idx > 0 && !retained.contains(&(idx - 1)))
        .collect();

    // Pass 1b: replay again, snapshotting at each run start.
    let mut checkpoints: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut m2 = HealthMonitor::with_config(cfg);
    for idx in 0..n {
        if starts.contains(&idx) {
            checkpoints.push((idx as u64, snapshot(&m2)));
        }
        r.scan_range(idx..idx + 1, &ScanFilter::all(), |ev, _, _| m2.observe(ev))?;
    }

    // Pass 2: rewrite.
    let file = File::create(output).map_err(|e| format!("create {}: {e}", output.display()))?;
    let mut w = CaptureWriter::new(
        BufWriter::new(file),
        CaptureConfig {
            segment_frames: wmsn_trace::DEFAULT_SEGMENT_FRAMES,
        },
    )
    .map_err(|e| format!("write {}: {e}", output.display()))?;
    w.set_frames_dropped(r.frames_dropped());
    for (seg, blob) in checkpoints.iter() {
        w.add_checkpoint(*seg, blob.clone());
    }
    w.set_alerts_jsonl(monitor.alerts_jsonl());
    let mut stats = CompactionStats {
        segments_total: n as u64,
        checkpoints: checkpoints.len() as u64,
        alerts: monitor.alerts().len() as u64,
        ..CompactionStats::default()
    };
    for idx in 0..n {
        let meta = r.segments()[idx];
        if retained.contains(&idx) {
            let raw = r.read_segment_raw(idx)?;
            w.push_segment_raw(&meta, &raw)
                .map_err(|e| format!("write {}: {e}", output.display()))?;
            stats.segments_retained += 1;
            stats.frames_retained += meta.frames as u64;
        } else {
            w.push_compacted(&meta);
            stats.segments_compacted += 1;
            stats.frames_compacted += meta.frames as u64;
        }
    }
    w.finish()
        .map_err(|e| format!("finish {}: {e}", output.display()))?;
    Ok(stats)
}
