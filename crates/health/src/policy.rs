//! Alert → recovery-action mapping.
//!
//! The monitor stays protocol-agnostic; this module is the thin layer
//! that turns its typed alerts into *requests* against the recovery
//! levers the routing stack already exposes (§4.2 gateway redirect,
//! secure-mode blacklisting, §4.3 load-aware selection). The health
//! crate cannot see the routing crate, so actions are plain values —
//! the sim-side loop (`wmsn_core::health_loop`) interprets them.

use crate::alert::{AlertKind, HealthAlert};

/// A recovery action requested by the policy. Interpreted by the
/// simulation loop against whatever protocol stack is running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthAction {
    /// Purge the gateway from every sensor's tables and caches so
    /// discovery re-routes around it (§4.2 redirect).
    RemoveGateway(u64),
    /// Blacklist the gateway in the secure stack (stronger than
    /// removal: replies naming it are rejected on arrival).
    BlacklistGateway(u64),
    /// Take a suspected-malicious node out of the network (sleep it).
    QuarantineNode(u64),
    /// Nudge the overloaded gateway's load-advertisement so the
    /// load-aware α term steers traffic to its peers (§4.3).
    RebalanceLoad(u64),
}

/// Maps alerts to actions. The two flags select which levers exist in
/// the running stack.
#[derive(Clone, Copy, Debug, Default)]
pub struct HealthPolicy {
    /// The stack is the secure (SMLR) variant: prefer blacklisting
    /// over plain removal for dead/hijacked gateways.
    pub secure: bool,
    /// Attack fingerprints may quarantine the accused node. Off by
    /// default: detection alone should not disrupt a healthy-but-odd
    /// node unless the operator opts in.
    pub quarantine_suspects: bool,
}

impl HealthPolicy {
    /// Actions for one alert, in application order.
    pub fn actions_for(&self, alert: &HealthAlert) -> Vec<HealthAction> {
        match alert.kind {
            AlertKind::GatewaySilence => {
                if self.secure {
                    vec![HealthAction::BlacklistGateway(alert.subject)]
                } else {
                    vec![HealthAction::RemoveGateway(alert.subject)]
                }
            }
            AlertKind::DuplicateStorm | AlertKind::ForwardAsymmetry | AlertKind::AnnounceSpike => {
                if self.quarantine_suspects {
                    vec![HealthAction::QuarantineNode(alert.subject)]
                } else {
                    Vec::new()
                }
            }
            AlertKind::LoadImbalance => vec![HealthAction::RebalanceLoad(alert.subject)],
            // Forecasts inform; they do not trigger intervention.
            AlertKind::EnergyDepletion => Vec::new(),
            // Backbone-tier detection is coverage only for now: the
            // stack exposes no WMG↔WMG steering lever yet (ROADMAP
            // "backbone-tier health" keeps the steering half open).
            AlertKind::BackboneAsymmetry | AlertKind::BaseSilence => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(kind: AlertKind) -> HealthAlert {
        HealthAlert {
            kind,
            t: 0,
            subject: 7,
            observed: 5,
            threshold: 3,
        }
    }

    #[test]
    fn silence_maps_to_the_stack_appropriate_lever() {
        let plain = HealthPolicy::default();
        assert_eq!(
            plain.actions_for(&alert(AlertKind::GatewaySilence)),
            vec![HealthAction::RemoveGateway(7)]
        );
        let secure = HealthPolicy {
            secure: true,
            ..HealthPolicy::default()
        };
        assert_eq!(
            secure.actions_for(&alert(AlertKind::GatewaySilence)),
            vec![HealthAction::BlacklistGateway(7)]
        );
    }

    #[test]
    fn quarantine_is_opt_in() {
        let cautious = HealthPolicy::default();
        assert!(cautious
            .actions_for(&alert(AlertKind::ForwardAsymmetry))
            .is_empty());
        let strict = HealthPolicy {
            quarantine_suspects: true,
            ..HealthPolicy::default()
        };
        assert_eq!(
            strict.actions_for(&alert(AlertKind::AnnounceSpike)),
            vec![HealthAction::QuarantineNode(7)]
        );
    }

    #[test]
    fn forecasts_do_not_intervene() {
        let p = HealthPolicy {
            secure: true,
            quarantine_suspects: true,
        };
        assert!(p.actions_for(&alert(AlertKind::EnergyDepletion)).is_empty());
        assert_eq!(
            p.actions_for(&alert(AlertKind::LoadImbalance)),
            vec![HealthAction::RebalanceLoad(7)]
        );
    }
}
