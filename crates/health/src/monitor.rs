//! The streaming health monitor and its detector bank.
//!
//! [`HealthMonitor`] implements [`TraceSink`], so it installs into the
//! simulator exactly like a JSONL recorder (`World::set_trace_sink`) —
//! the hot path keeps paying a single branch when no sink is installed,
//! and one dynamic dispatch when one is. Every [`TraceEvent`] updates
//! O(1) counters; detectors run only at window boundaries.
//!
//! The detector bank is *blind*: it sees nothing but the trace stream —
//! no attack labels, no behaviour downcasts — which is what makes the
//! E18 fingerprinting experiment meaningful.
//!
//! Detector conditions (all thresholds live in [`HealthConfig`]):
//!
//! | alert               | condition at window close                       |
//! |---------------------|-------------------------------------------------|
//! | `gateway_silence`   | a gateway that has delivered goes ≥ N windows without a delivery while the network kept forwarding |
//! | `duplicate_storm`   | ≥ N duplicate forwards/deliveries of already-seen `(origin, msg_id)` in one window |
//! | `forward_asymmetry` | a non-gateway node has received ≥ N data frames but never forwarded or delivered |
//! | `announce_spike`    | a non-gateway node has seeded ≥ N control floods with no recent reception and no RREQ origination |
//! | `load_imbalance`    | with ≥ 2 known gateways, one absorbs ≥ P% of a busy window's deliveries |
//! | `energy_depletion`  | a node's consumption slope forecasts battery exhaustion within the horizon |
//! | `backbone_asymmetry`| a node has absorbed ≥ N mesh-tier data frames but never re-transmitted on the mesh nor delivered |
//! | `base_silence`      | a mesh-fed delivering node (base station) goes ≥ N windows without a delivery while mesh data kept flowing |

use crate::alert::{AlertKind, HealthAlert};
use crate::stats::{drop_cause_index, GatewayStats, NetStats, NodeStats, DROP_CAUSE_COUNT};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use wmsn_trace::{DropCause, TraceEvent, TraceKind, TraceSink, TraceTier};

/// Detector thresholds and aggregation parameters.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Aggregation window (µs). Detectors run at window boundaries.
    pub window_us: u64,
    /// EWMA weight for per-window rates.
    pub ewma_alpha: f64,
    /// Windows without a delivery before a previously-active gateway is
    /// declared silent (§4.2 watchdog).
    pub silence_windows: u64,
    /// Duplicate forwards/deliveries per window that constitute a storm.
    pub duplicate_storm_threshold: u64,
    /// Data receptions after which a node that never forwards or
    /// delivers is flagged (sinkhole / blackhole).
    pub asymmetry_min_rx_data: u64,
    /// Mesh-tier data receptions after which a backbone node that never
    /// re-transmits on the mesh nor delivers is flagged (WMG↔WMG
    /// asymmetry).
    pub backbone_min_rx_data: u64,
    /// Gap (µs) since the last reception beyond which a control
    /// broadcast counts as self-seeded rather than a re-flood.
    pub spontaneity_gap_us: u64,
    /// Self-seeded control floods before a node is flagged as an
    /// announcer (forged move / HELLO flood).
    pub announce_spike_floods: u64,
    /// Minimum deliveries in a window before imbalance is judged.
    pub imbalance_min_delivers: u64,
    /// Percentage of a window's deliveries one gateway may absorb.
    pub imbalance_max_pct: u64,
    /// Battery capacity (J) for the depletion forecast; `None` disables
    /// the detector (the trace does not carry capacities).
    pub battery_capacity_j: Option<f64>,
    /// Forecast horizon (µs): alert when the projected exhaustion time
    /// is this close.
    pub depletion_horizon_us: u64,
    /// Fraction of capacity that must already be consumed before the
    /// forecast may fire (suppresses early-trace noise).
    pub depletion_min_fraction: f64,
    /// How many recent frame sequence numbers to remember for
    /// rx-by-kind classification.
    pub seq_window: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window_us: 500_000,
            ewma_alpha: 0.3,
            silence_windows: 3,
            duplicate_storm_threshold: 3,
            asymmetry_min_rx_data: 3,
            backbone_min_rx_data: 3,
            spontaneity_gap_us: 50_000,
            announce_spike_floods: 3,
            imbalance_min_delivers: 20,
            imbalance_max_pct: 90,
            battery_capacity_j: None,
            depletion_horizon_us: 10_000_000,
            depletion_min_fraction: 0.5,
            seq_window: 4096,
        }
    }
}

/// Streaming monitor: aggregates the trace online and raises
/// [`HealthAlert`]s. Install with `World::set_trace_sink`, or feed
/// decoded JSONL through [`HealthMonitor::observe`] offline.
#[derive(Clone)]
pub struct HealthMonitor {
    pub(crate) cfg: HealthConfig,
    pub(crate) nodes: Vec<NodeStats>,
    pub(crate) gateways: BTreeMap<u64, GatewayStats>,
    pub(crate) net: NetStats,
    /// Frame kind/tier per recently announced `tx_start` sequence
    /// number, for classifying `rx` events. Keyed lookups only (never
    /// iterated), so the `HashMap` stays deterministic. Sequence
    /// numbers are causal keys, NOT monotone in emission order — a
    /// CSMA retransmit can also re-announce the same seq, hence the
    /// occurrence count.
    pub(crate) seq_kinds: HashMap<u64, (TraceKind, TraceTier, u32)>,
    /// Eviction order for `seq_kinds`, bounding it to
    /// [`HealthConfig::seq_window`] recent announcements.
    pub(crate) seq_ring: VecDeque<u64>,
    /// `(node, origin, msg_id)` triples already forwarded — membership
    /// only, never iterated, so a HashSet stays deterministic.
    pub(crate) forwarded: HashSet<(u64, u64, u64)>,
    /// `(origin, msg_id)` pairs already delivered.
    pub(crate) delivered: HashSet<(u64, u64)>,
    /// Per-node time of the latest RREQ origination (`rreq_flood` with
    /// `forwarded == false`), which licences the control broadcast
    /// emitted at the same instant.
    pub(crate) rreq_grace: Vec<u64>,
    pub(crate) cur_window: u64,
    pub(crate) alerts: Vec<HealthAlert>,
    /// Alerts already handed out via [`HealthMonitor::take_new_alerts`].
    pub(crate) drained: usize,
    /// `(kind, subject)` pairs already alerted (latch).
    pub(crate) latched: BTreeSet<(AlertKind, u64)>,
}

impl HealthMonitor {
    /// Monitor with default thresholds.
    pub fn new() -> Self {
        Self::with_config(HealthConfig::default())
    }

    /// Monitor with explicit thresholds.
    pub fn with_config(cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            nodes: Vec::new(),
            gateways: BTreeMap::new(),
            net: NetStats::default(),
            seq_kinds: HashMap::new(),
            seq_ring: VecDeque::new(),
            forwarded: HashSet::new(),
            delivered: HashSet::new(),
            rreq_grace: Vec::new(),
            cur_window: 0,
            alerts: Vec::new(),
            drained: 0,
            latched: BTreeSet::new(),
        }
    }

    /// Boxed, for `World::set_trace_sink`.
    pub fn boxed(cfg: HealthConfig) -> Box<dyn TraceSink> {
        Box::new(Self::with_config(cfg))
    }

    /// The active configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    fn node_mut(&mut self, id: u64) -> &mut NodeStats {
        let idx = id as usize;
        if idx >= self.nodes.len() {
            self.nodes.resize_with(idx + 1, NodeStats::default);
            self.rreq_grace.resize(idx + 1, u64::MAX);
        }
        &mut self.nodes[idx]
    }

    fn register_gateway(&mut self, id: u64) {
        self.gateways.entry(id).or_default();
    }

    /// Feed one event. [`TraceSink::record`] delegates here; offline
    /// replays call it directly with decoded events.
    pub fn observe(&mut self, ev: &TraceEvent) {
        let t = ev.t();
        let w = t / self.cfg.window_us;
        if w > self.cur_window {
            let eval_t = (self.cur_window + 1) * self.cfg.window_us;
            self.run_detectors(eval_t);
            self.roll_windows();
            self.cur_window = w;
        }
        self.net.events += 1;
        match *ev {
            TraceEvent::TxStart {
                t,
                seq,
                src,
                dst,
                tier,
                kind,
                ..
            } => {
                let gateway = self.gateways.contains_key(&u64::from(src.0));
                let cfg_gap = self.cfg.spontaneity_gap_us;
                let seq_cap = self.cfg.seq_window;
                let cur = self.cur_window;
                let grace = self
                    .rreq_grace
                    .get(src.index())
                    .copied()
                    .unwrap_or(u64::MAX);
                let s = self.node_mut(u64::from(src.0));
                match kind {
                    TraceKind::Control => s.tx_control += 1,
                    TraceKind::Data => s.tx_data += 1,
                    TraceKind::Security => s.tx_security += 1,
                }
                s.w_tx_total += 1;
                let mesh_data = kind == TraceKind::Data && tier == TraceTier::Mesh;
                if mesh_data {
                    s.tx_mesh_data += 1;
                }
                if kind == TraceKind::Control {
                    s.w_tx_control += 1;
                    // A broadcast control frame with no recent reception
                    // and no same-instant RREQ origination was seeded,
                    // not relayed — the announcer fingerprint.
                    let recent_rx = s.last_rx_t.is_some_and(|r| t.saturating_sub(r) <= cfg_gap);
                    if dst.is_none() && !gateway && !recent_rx && grace != t {
                        s.spontaneous_ctrl += 1;
                    }
                }
                if mesh_data {
                    self.net.last_mesh_data_window = Some(cur);
                }
                self.net.tx_total += 1;
                self.seq_ring.push_back(seq);
                self.seq_kinds.entry(seq).or_insert((kind, tier, 0)).2 += 1;
                while self.seq_ring.len() > seq_cap {
                    let old = self.seq_ring.pop_front().expect("len > 0");
                    if let Some(e) = self.seq_kinds.get_mut(&old) {
                        e.2 -= 1;
                        if e.2 == 0 {
                            self.seq_kinds.remove(&old);
                        }
                    }
                }
            }
            TraceEvent::TxDefer { .. } | TraceEvent::TxGiveUp { .. } => {}
            TraceEvent::Rx { t, seq, node } => {
                let data_tier = self
                    .seq_kinds
                    .get(&seq)
                    .and_then(|&(kind, tier, _)| (kind == TraceKind::Data).then_some(tier));
                let s = self.node_mut(u64::from(node.0));
                s.rx += 1;
                s.last_rx_t = Some(t);
                match data_tier {
                    Some(TraceTier::Sensor) => s.rx_data += 1,
                    Some(TraceTier::Mesh) => s.rx_mesh_data += 1,
                    None => {}
                }
                self.net.rx_total += 1;
            }
            TraceEvent::Drop { node, cause, .. } => {
                let i = drop_cause_index(cause);
                self.node_mut(u64::from(node.0)).drops[i] += 1;
                self.net.drops[i] += 1;
            }
            TraceEvent::Forward {
                node,
                origin,
                msg_id,
                ..
            } => {
                let key = (u64::from(node.0), u64::from(origin.0), msg_id);
                let dup = !self.forwarded.insert(key);
                let s = self.node_mut(u64::from(node.0));
                s.forwards += 1;
                if dup {
                    s.dup_forwards += 1;
                    s.w_dup_forwards += 1;
                    self.net.dup_forwards += 1;
                    self.net.w_duplicates += 1;
                }
                self.net.forwards += 1;
                self.net.w_forwards += 1;
                self.net.last_forward_window = Some(self.cur_window);
            }
            TraceEvent::Deliver {
                node,
                origin,
                msg_id,
                ..
            } => {
                let dup = !self.delivered.insert((u64::from(origin.0), msg_id));
                self.node_mut(u64::from(node.0)).delivers += 1;
                let w = self.cur_window;
                let g = self.gateways.entry(u64::from(node.0)).or_default();
                g.delivers += 1;
                g.w_delivers += 1;
                g.last_deliver_window = Some(w);
                g.silence_latched = false;
                g.base_silence_latched = false;
                self.net.delivers += 1;
                self.net.w_delivers += 1;
                if dup {
                    self.net.dup_delivers += 1;
                    self.net.w_duplicates += 1;
                }
            }
            TraceEvent::RreqFlood {
                t, node, forwarded, ..
            } => {
                self.node_mut(u64::from(node.0));
                if !forwarded {
                    self.rreq_grace[node.index()] = t;
                }
            }
            TraceEvent::CacheReply { gateway, .. } => {
                self.register_gateway(u64::from(gateway.0));
            }
            TraceEvent::RouteInstall { node, gateway, .. } => {
                self.register_gateway(u64::from(gateway.0));
                self.node_mut(u64::from(node.0)).route_installs += 1;
                self.net.route_installs += 1;
                if let Some(g) = self.gateways.get_mut(&u64::from(gateway.0)) {
                    g.routes_installed += 1;
                }
            }
            TraceEvent::RouteSelect { gateway, .. } => {
                self.register_gateway(u64::from(gateway.0));
            }
            TraceEvent::GatewayMove { gateway, .. } => {
                self.register_gateway(u64::from(gateway.0));
                if let Some(g) = self.gateways.get_mut(&u64::from(gateway.0)) {
                    g.moves += 1;
                }
            }
            TraceEvent::NodeMove { .. }
            | TraceEvent::NodeSleep { .. }
            | TraceEvent::NodeWake { .. }
            | TraceEvent::NodeKill { .. } => {}
            TraceEvent::Energy {
                t,
                node,
                consumed_j,
            } => {
                let s = self.node_mut(u64::from(node.0));
                if s.energy_anchor.is_none() {
                    s.energy_anchor = Some((t, consumed_j));
                }
                s.last_energy_t = t;
                s.consumed_j = consumed_j;
            }
        }
    }

    /// Run the detector bank against the state accumulated so far, as
    /// of `eval_t`. Called automatically at window boundaries and on
    /// flush; latches make repeated evaluation idempotent.
    fn run_detectors(&mut self, eval_t: u64) {
        self.detect_gateway_silence(eval_t);
        self.detect_duplicate_storm(eval_t);
        self.detect_forward_asymmetry(eval_t);
        self.detect_announce_spike(eval_t);
        self.detect_load_imbalance(eval_t);
        self.detect_energy_depletion(eval_t);
        self.detect_backbone_asymmetry(eval_t);
        self.detect_base_silence(eval_t);
    }

    fn raise(&mut self, kind: AlertKind, t: u64, subject: u64, observed: u64, threshold: u64) {
        if self.latched.insert((kind, subject)) {
            self.alerts.push(HealthAlert {
                kind,
                t,
                subject,
                observed,
                threshold,
            });
        }
    }

    fn detect_gateway_silence(&mut self, eval_t: u64) {
        let cur = self.cur_window;
        let threshold = self.cfg.silence_windows;
        let forwarding = self.net.last_forward_window;
        let mut hits: Vec<(u64, u64)> = Vec::new();
        for (&id, g) in &self.gateways {
            if g.silence_latched || g.delivers == 0 {
                continue;
            }
            let Some(last) = g.last_deliver_window else {
                continue;
            };
            let silent = cur.saturating_sub(last);
            // The network must have kept forwarding after the gateway's
            // last delivery — a globally idle network is not a failure.
            let network_active = forwarding.is_some_and(|f| f > last);
            if silent >= threshold && network_active {
                hits.push((id, silent));
            }
        }
        for (id, silent) in hits {
            if let Some(g) = self.gateways.get_mut(&id) {
                g.silence_latched = true;
            }
            // Silence is latched per incident on the gateway itself (a
            // delivery re-arms it), not in the global latch set.
            self.alerts.push(HealthAlert {
                kind: AlertKind::GatewaySilence,
                t: eval_t,
                subject: id,
                observed: silent,
                threshold,
            });
        }
    }

    fn detect_duplicate_storm(&mut self, eval_t: u64) {
        let threshold = self.cfg.duplicate_storm_threshold;
        if self.net.w_duplicates < threshold {
            return;
        }
        // Accuse the busiest duplicating forwarder this window (lowest
        // id on ties); id 0 stands for "network" when duplicates came
        // only from repeat deliveries.
        let mut subject = 0u64;
        let mut best = 0u64;
        for (i, s) in self.nodes.iter().enumerate() {
            if s.w_dup_forwards > best {
                best = s.w_dup_forwards;
                subject = i as u64;
            }
        }
        let observed = self.net.w_duplicates;
        self.raise(
            AlertKind::DuplicateStorm,
            eval_t,
            subject,
            observed,
            threshold,
        );
    }

    fn detect_forward_asymmetry(&mut self, eval_t: u64) {
        let threshold = self.cfg.asymmetry_min_rx_data;
        let mut hits: Vec<(u64, u64)> = Vec::new();
        for (i, s) in self.nodes.iter().enumerate() {
            let id = i as u64;
            if self.gateways.contains_key(&id) {
                continue;
            }
            if s.rx_data >= threshold && s.forwards == 0 && s.delivers == 0 {
                hits.push((id, s.rx_data));
            }
        }
        for (id, rx_data) in hits {
            self.raise(AlertKind::ForwardAsymmetry, eval_t, id, rx_data, threshold);
        }
    }

    fn detect_announce_spike(&mut self, eval_t: u64) {
        let threshold = self.cfg.announce_spike_floods;
        let mut hits: Vec<(u64, u64)> = Vec::new();
        for (i, s) in self.nodes.iter().enumerate() {
            let id = i as u64;
            if self.gateways.contains_key(&id) {
                continue;
            }
            if s.spontaneous_ctrl >= threshold {
                hits.push((id, s.spontaneous_ctrl));
            }
        }
        for (id, floods) in hits {
            self.raise(AlertKind::AnnounceSpike, eval_t, id, floods, threshold);
        }
    }

    fn detect_load_imbalance(&mut self, eval_t: u64) {
        if self.gateways.len() < 2 || self.net.w_delivers < self.cfg.imbalance_min_delivers {
            return;
        }
        let (mut top, mut top_delivers) = (0u64, 0u64);
        for (&id, g) in &self.gateways {
            if g.w_delivers > top_delivers {
                top_delivers = g.w_delivers;
                top = id;
            }
        }
        let pct = top_delivers * 100 / self.net.w_delivers;
        if pct >= self.cfg.imbalance_max_pct {
            self.raise(
                AlertKind::LoadImbalance,
                eval_t,
                top,
                pct,
                self.cfg.imbalance_max_pct,
            );
        }
    }

    fn detect_energy_depletion(&mut self, eval_t: u64) {
        let Some(cap) = self.cfg.battery_capacity_j else {
            return;
        };
        let min_consumed = cap * self.cfg.depletion_min_fraction;
        let horizon = self.cfg.depletion_horizon_us;
        let mut hits: Vec<(u64, u64)> = Vec::new();
        for (i, s) in self.nodes.iter().enumerate() {
            if s.consumed_j < min_consumed {
                continue;
            }
            let Some(eta) = s.depletion_eta_us(cap, eval_t) else {
                continue;
            };
            if eta.saturating_sub(eval_t) <= horizon {
                hits.push((i as u64, eta));
            }
        }
        for (id, eta) in hits {
            self.raise(
                AlertKind::EnergyDepletion,
                eval_t,
                id,
                eta,
                eval_t.saturating_add(horizon),
            );
        }
    }

    fn detect_backbone_asymmetry(&mut self, eval_t: u64) {
        let threshold = self.cfg.backbone_min_rx_data;
        let mut hits: Vec<(u64, u64)> = Vec::new();
        for (i, s) in self.nodes.iter().enumerate() {
            // A healthy backbone node either relays mesh data onward
            // (WMR/WMG) or delivers it (base station); absorbing it
            // while doing neither is the WMG↔WMG sinkhole signature.
            if s.rx_mesh_data >= threshold && s.tx_mesh_data == 0 && s.delivers == 0 {
                hits.push((i as u64, s.rx_mesh_data));
            }
        }
        for (id, rx) in hits {
            self.raise(AlertKind::BackboneAsymmetry, eval_t, id, rx, threshold);
        }
    }

    fn detect_base_silence(&mut self, eval_t: u64) {
        let cur = self.cur_window;
        let threshold = self.cfg.silence_windows;
        let mesh_active = self.net.last_mesh_data_window;
        let mut hits: Vec<(u64, u64)> = Vec::new();
        for (&id, g) in &self.gateways {
            if g.base_silence_latched || g.delivers == 0 {
                continue;
            }
            // Only mesh-fed deliverers qualify: the base station is the
            // node that absorbs mesh-tier data and delivers it. WMGs
            // deliver sensor-tier data and never match.
            let mesh_fed = self
                .nodes
                .get(id as usize)
                .is_some_and(|s| s.rx_mesh_data > 0);
            if !mesh_fed {
                continue;
            }
            let Some(last) = g.last_deliver_window else {
                continue;
            };
            let silent = cur.saturating_sub(last);
            // The backbone must have kept carrying data after the last
            // delivery — an idle mesh is not a base failure.
            let backbone_active = mesh_active.is_some_and(|m| m > last);
            if silent >= threshold && backbone_active {
                hits.push((id, silent));
            }
        }
        for (id, silent) in hits {
            if let Some(g) = self.gateways.get_mut(&id) {
                g.base_silence_latched = true;
            }
            // Like gateway_silence: latched per incident on the node (a
            // delivery re-arms it), not in the global latch set.
            self.alerts.push(HealthAlert {
                kind: AlertKind::BaseSilence,
                t: eval_t,
                subject: id,
                observed: silent,
                threshold,
            });
        }
    }

    fn roll_windows(&mut self) {
        let alpha = self.cfg.ewma_alpha;
        for s in &mut self.nodes {
            s.roll_window(alpha);
        }
        for g in self.gateways.values_mut() {
            g.roll_window(alpha);
        }
        self.net.roll_window();
    }

    /// Evaluate the detectors against the current (possibly partial)
    /// window without resetting it. Called by [`TraceSink::flush`];
    /// call it after the last [`HealthMonitor::observe`] offline.
    pub fn finalize(&mut self) {
        let eval_t = (self.cur_window + 1) * self.cfg.window_us;
        self.run_detectors(eval_t);
    }

    /// All alerts raised so far, in raise order.
    pub fn alerts(&self) -> &[HealthAlert] {
        &self.alerts
    }

    /// Alerts raised since the previous call — the policy-loop drain.
    pub fn take_new_alerts(&mut self) -> Vec<HealthAlert> {
        let new = self.alerts[self.drained..].to_vec();
        self.drained = self.alerts.len();
        new
    }

    /// The alert stream as byte-deterministic JSONL.
    pub fn alerts_jsonl(&self) -> String {
        crate::alert::alerts_to_jsonl(&self.alerts)
    }

    /// Per-node statistics, indexed by node id (dense; nodes the trace
    /// never mentioned have default entries up to the highest seen id).
    pub fn nodes(&self) -> &[NodeStats] {
        &self.nodes
    }

    /// One node's statistics, if the trace mentioned it.
    pub fn node(&self, id: u64) -> Option<&NodeStats> {
        self.nodes.get(id as usize)
    }

    /// Per-gateway statistics (gateways are learned from the trace).
    pub fn gateways(&self) -> &BTreeMap<u64, GatewayStats> {
        &self.gateways
    }

    /// Network-wide counters.
    pub fn net(&self) -> &NetStats {
        &self.net
    }

    /// Network-wide drops of one cause — the counter the exhaustiveness
    /// test pins against `Metrics`.
    pub fn drops_of_cause(&self, cause: DropCause) -> u64 {
        self.net.drops[drop_cause_index(cause)]
    }

    /// Network-wide drops across all causes.
    pub fn drops_total(&self) -> u64 {
        (0..DROP_CAUSE_COUNT).map(|i| self.net.drops[i]).sum()
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for HealthMonitor {
    fn record(&mut self, ev: &TraceEvent) {
        self.observe(ev);
    }

    fn flush(&mut self) {
        self.finalize();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_util::NodeId;

    fn forward(t: u64, node: u32, msg_id: u64) -> TraceEvent {
        TraceEvent::Forward {
            t,
            node: NodeId(node),
            origin: NodeId(1),
            msg_id,
            next: Some(NodeId(9)),
            hops: 2,
        }
    }

    fn deliver(t: u64, gw: u32, msg_id: u64) -> TraceEvent {
        TraceEvent::Deliver {
            t,
            node: NodeId(gw),
            origin: NodeId(1),
            msg_id,
            hops: 2,
            latency_us: 10,
        }
    }

    #[test]
    fn duplicate_storm_fires_on_replayed_forwards() {
        let mut m = HealthMonitor::new();
        // The same (node, origin, msg) forwarded four times in window 0.
        for i in 0..4 {
            m.observe(&forward(1_000 + i, 2, 7));
        }
        m.observe(&forward(600_000, 3, 8)); // window rollover triggers detectors
        let kinds: Vec<_> = m.alerts().iter().map(|a| a.kind).collect();
        assert_eq!(kinds, vec![AlertKind::DuplicateStorm]);
        assert_eq!(m.alerts()[0].subject, 2);
        assert_eq!(m.alerts()[0].t, 500_000);
    }

    #[test]
    fn gateway_silence_needs_continued_forwarding() {
        let mut m = HealthMonitor::new();
        m.observe(&deliver(100, 9, 1));
        // Four windows of forwarding with no deliveries → silence.
        for w in 1..5u64 {
            m.observe(&forward(w * 500_000 + 1, 2, 100 + w));
        }
        m.observe(&forward(5 * 500_000 + 1, 2, 200));
        let silence: Vec<_> = m
            .alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::GatewaySilence)
            .collect();
        assert_eq!(silence.len(), 1);
        assert_eq!(silence[0].subject, 9);
        // A new delivery re-arms the latch.
        m.observe(&deliver(5 * 500_000 + 2, 9, 201));
        assert!(!m.gateways()[&9].silence_latched);
    }

    #[test]
    fn idle_network_is_not_gateway_silence() {
        let mut m = HealthMonitor::new();
        m.observe(&deliver(100, 9, 1));
        // Windows pass with no traffic at all: no alert.
        m.observe(&TraceEvent::Energy {
            t: 4_000_000,
            node: NodeId(1),
            consumed_j: 0.1,
        });
        m.finalize();
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn forward_asymmetry_flags_a_swallowing_node() {
        let mut m = HealthMonitor::new();
        for i in 0..4u64 {
            m.observe(&TraceEvent::TxStart {
                t: 1_000 + i,
                seq: i,
                src: NodeId(1),
                dst: Some(NodeId(5)),
                tier: wmsn_trace::TraceTier::Sensor,
                kind: TraceKind::Data,
                bytes: 32,
            });
            m.observe(&TraceEvent::Rx {
                t: 2_000 + i,
                seq: i,
                node: NodeId(5),
            });
        }
        m.finalize();
        let kinds: Vec<_> = m.alerts().iter().map(|a| (a.kind, a.subject)).collect();
        assert_eq!(kinds, vec![(AlertKind::ForwardAsymmetry, 5)]);
        // Latched: finalizing again does not duplicate the alert.
        m.finalize();
        assert_eq!(m.alerts().len(), 1);
    }

    #[test]
    fn announce_spike_ignores_gateways_and_refloods() {
        let mut m = HealthMonitor::new();
        m.observe(&TraceEvent::GatewayMove {
            t: 0,
            gateway: NodeId(9),
            place: 0,
        });
        let ctrl = |t: u64, src: u32, seq: u64| TraceEvent::TxStart {
            t,
            seq,
            src: NodeId(src),
            dst: None,
            tier: wmsn_trace::TraceTier::Sensor,
            kind: TraceKind::Control,
            bytes: 16,
        };
        // The gateway floods freely; node 4 seeds three unprompted
        // floods 300 ms apart; node 2 re-floods right after receptions.
        for k in 0..3u64 {
            let t = 300_000 * (k + 1);
            m.observe(&ctrl(t, 9, 10 + k));
            m.observe(&ctrl(t + 1, 4, 20 + k));
            m.observe(&TraceEvent::Rx {
                t: t + 2,
                seq: 20 + k,
                node: NodeId(2),
            });
            m.observe(&ctrl(t + 2_000, 2, 30 + k));
        }
        m.finalize();
        let kinds: Vec<_> = m.alerts().iter().map(|a| (a.kind, a.subject)).collect();
        assert_eq!(kinds, vec![(AlertKind::AnnounceSpike, 4)]);
    }

    #[test]
    fn rreq_origination_is_not_spontaneous() {
        let mut m = HealthMonitor::new();
        for k in 0..5u64 {
            let t = 200_000 * (k + 1);
            m.observe(&TraceEvent::RreqFlood {
                t,
                node: NodeId(3),
                origin: NodeId(3),
                req_id: k,
                forwarded: false,
            });
            m.observe(&TraceEvent::TxStart {
                t,
                seq: k,
                src: NodeId(3),
                dst: None,
                tier: wmsn_trace::TraceTier::Sensor,
                kind: TraceKind::Control,
                bytes: 16,
            });
        }
        m.finalize();
        assert!(m.alerts().is_empty());
        assert_eq!(m.node(3).unwrap().spontaneous_ctrl, 0);
    }

    #[test]
    fn load_imbalance_fires_on_a_hogging_gateway() {
        let mut m = HealthMonitor::new();
        m.observe(&deliver(1, 8, 1_000));
        for i in 0..24u64 {
            m.observe(&deliver(10 + i, 9, i));
        }
        m.finalize();
        let hits: Vec<_> = m
            .alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::LoadImbalance)
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].subject, 9);
        assert_eq!(hits[0].observed, 24 * 100 / 25);
    }

    #[test]
    fn energy_depletion_forecasts_first_death() {
        let mut m = HealthMonitor::with_config(HealthConfig {
            battery_capacity_j: Some(2.0),
            ..HealthConfig::default()
        });
        m.observe(&TraceEvent::Energy {
            t: 0,
            node: NodeId(1),
            consumed_j: 0.0,
        });
        // 1.5 J gone after 1 s → dead in another ~0.33 s — well inside
        // the 10 s horizon.
        m.observe(&TraceEvent::Energy {
            t: 1_000_000,
            node: NodeId(1),
            consumed_j: 1.5,
        });
        m.finalize();
        let kinds: Vec<_> = m.alerts().iter().map(|a| (a.kind, a.subject)).collect();
        assert_eq!(kinds, vec![(AlertKind::EnergyDepletion, 1)]);
    }

    #[test]
    fn rx_kind_classification_uses_the_seq_ring() {
        let mut m = HealthMonitor::new();
        m.observe(&TraceEvent::TxStart {
            t: 1,
            seq: 5,
            src: NodeId(0),
            dst: None,
            tier: wmsn_trace::TraceTier::Sensor,
            kind: TraceKind::Control,
            bytes: 16,
        });
        m.observe(&TraceEvent::Rx {
            t: 2,
            seq: 5,
            node: NodeId(1),
        });
        assert_eq!(m.node(1).unwrap().rx, 1);
        assert_eq!(m.node(1).unwrap().rx_data, 0);
    }

    fn mesh_tx(t: u64, seq: u64, src: u32) -> TraceEvent {
        TraceEvent::TxStart {
            t,
            seq,
            src: NodeId(src),
            dst: Some(NodeId(99)),
            tier: wmsn_trace::TraceTier::Mesh,
            kind: TraceKind::Data,
            bytes: 64,
        }
    }

    #[test]
    fn backbone_asymmetry_flags_a_mesh_sinkhole() {
        let mut m = HealthMonitor::new();
        // Node 5 absorbs four mesh-tier data frames from node 1 and
        // never re-transmits on the mesh nor delivers; node 6 relays
        // what it hears and stays clean.
        for i in 0..4u64 {
            m.observe(&mesh_tx(1_000 + i, i, 1));
            m.observe(&TraceEvent::Rx {
                t: 2_000 + i,
                seq: i,
                node: NodeId(5),
            });
            m.observe(&TraceEvent::Rx {
                t: 2_100 + i,
                seq: i,
                node: NodeId(6),
            });
            m.observe(&mesh_tx(2_200 + i, 100 + i, 6));
        }
        m.finalize();
        let kinds: Vec<_> = m.alerts().iter().map(|a| (a.kind, a.subject)).collect();
        assert_eq!(kinds, vec![(AlertKind::BackboneAsymmetry, 5)]);
        assert_eq!(m.node(5).unwrap().rx_mesh_data, 4);
        assert_eq!(
            m.node(5).unwrap().rx_data,
            0,
            "mesh data is not sensor data"
        );
        // Latched.
        m.finalize();
        assert_eq!(m.alerts().len(), 1);
    }

    #[test]
    fn base_silence_needs_a_flowing_backbone() {
        let mut m = HealthMonitor::new();
        // Node 9 is the base: it absorbs mesh data and delivers.
        m.observe(&mesh_tx(50, 1, 2));
        m.observe(&TraceEvent::Rx {
            t: 60,
            seq: 1,
            node: NodeId(9),
        });
        m.observe(&deliver(100, 9, 1));
        // Four windows of continued mesh transmissions, no deliveries.
        for w in 1..5u64 {
            m.observe(&mesh_tx(w * 500_000 + 1, 10 + w, 2));
        }
        m.observe(&mesh_tx(5 * 500_000 + 1, 20, 2));
        let hits: Vec<_> = m
            .alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::BaseSilence)
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].subject, 9);
        // A delivery re-arms the latch.
        m.observe(&deliver(5 * 500_000 + 2, 9, 21));
        assert!(!m.gateways()[&9].base_silence_latched);
    }

    #[test]
    fn base_silence_ignores_sensor_fed_gateways_and_idle_meshes() {
        // A sensor-fed gateway (WMG) that stops delivering raises
        // gateway_silence at most, never base_silence.
        let mut m = HealthMonitor::new();
        m.observe(&deliver(100, 7, 1));
        for w in 1..6u64 {
            m.observe(&forward(w * 500_000 + 1, 2, 100 + w));
        }
        m.finalize();
        assert!(m.alerts().iter().all(|a| a.kind != AlertKind::BaseSilence));
        // A mesh-fed base on an idle backbone is not a failure either.
        let mut m = HealthMonitor::new();
        m.observe(&mesh_tx(50, 1, 2));
        m.observe(&TraceEvent::Rx {
            t: 60,
            seq: 1,
            node: NodeId(9),
        });
        m.observe(&deliver(100, 9, 1));
        m.observe(&TraceEvent::Energy {
            t: 4_000_000,
            node: NodeId(1),
            consumed_j: 0.1,
        });
        m.finalize();
        assert!(m.alerts().iter().all(|a| a.kind != AlertKind::BaseSilence));
    }

    #[test]
    fn take_new_alerts_drains_incrementally() {
        let mut m = HealthMonitor::new();
        for i in 0..4 {
            m.observe(&forward(1_000 + i, 2, 7));
        }
        m.finalize();
        assert_eq!(m.take_new_alerts().len(), 1);
        assert!(m.take_new_alerts().is_empty());
    }
}
