//! Binary checkpoint codec for [`HealthMonitor`] state.
//!
//! A checkpoint is a full serialisation of the monitor's detector
//! state — EWMA baselines, window accumulators, latched detectors,
//! the seq-kind classification ring, dedup sets and per-entity
//! tables — taken at a capture segment boundary. Restoring one and
//! replaying the remaining segments produces *byte-identical* alert
//! streams to a replay from t=0 (modulo alerts raised before the
//! checkpoint, which a windowed query filters out anyway; their
//! latches ARE carried, so nothing re-fires).
//!
//! The encoding is little-endian and versioned by an 8-byte magic.
//! `HashMap`/`HashSet` contents are written in sorted key order and
//! the `VecDeque` ring in its queue order, so the same monitor state
//! always serialises to the same bytes. Floats travel via
//! [`f64::to_bits`] — bit-exact, like the trace frame codec.
//!
//! The blob is opaque to `wmsn-trace`: the capture layer stores
//! `(seg_index, bytes)` pairs; only this module interprets them.

use crate::alert::AlertKind;
use crate::monitor::{HealthConfig, HealthMonitor};
use crate::stats::{Ewma, GatewayStats, NetStats, NodeStats, DROP_CAUSE_COUNT};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use wmsn_trace::{TraceKind, TraceTier};

/// Magic bytes opening every checkpoint blob (versioned: a layout
/// change bumps the trailing digit).
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"WMSNHCK1";

// ------------------------------------------------------------ encode --

struct Enc {
    out: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn boolean(&mut self, v: bool) {
        self.out.push(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.boolean(true);
                self.u64(x);
            }
            None => self.boolean(false),
        }
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.boolean(true);
                self.f64(x);
            }
            None => self.boolean(false),
        }
    }
    fn ewma(&mut self, e: &Ewma) {
        let (value, seeded) = e.raw_parts();
        self.f64(value);
        self.boolean(seeded);
    }
}

fn kind_tag(k: TraceKind) -> u8 {
    match k {
        TraceKind::Control => 0,
        TraceKind::Data => 1,
        TraceKind::Security => 2,
    }
}

fn kind_of_tag(tag: u8) -> Result<TraceKind, String> {
    match tag {
        0 => Ok(TraceKind::Control),
        1 => Ok(TraceKind::Data),
        2 => Ok(TraceKind::Security),
        t => Err(format!("checkpoint: unknown trace kind tag {t}")),
    }
}

fn tier_tag(t: TraceTier) -> u8 {
    match t {
        TraceTier::Sensor => 0,
        TraceTier::Mesh => 1,
    }
}

fn tier_of_tag(tag: u8) -> Result<TraceTier, String> {
    match tag {
        0 => Ok(TraceTier::Sensor),
        1 => Ok(TraceTier::Mesh),
        t => Err(format!("checkpoint: unknown trace tier tag {t}")),
    }
}

fn alert_kind_tag(k: AlertKind) -> u8 {
    AlertKind::all()
        .iter()
        .position(|&x| x == k)
        .expect("all() is exhaustive") as u8
}

fn alert_kind_of_tag(tag: u8) -> Result<AlertKind, String> {
    AlertKind::all()
        .get(tag as usize)
        .copied()
        .ok_or_else(|| format!("checkpoint: unknown alert kind tag {tag}"))
}

fn enc_config(e: &mut Enc, c: &HealthConfig) {
    e.u64(c.window_us);
    e.f64(c.ewma_alpha);
    e.u64(c.silence_windows);
    e.u64(c.duplicate_storm_threshold);
    e.u64(c.asymmetry_min_rx_data);
    e.u64(c.backbone_min_rx_data);
    e.u64(c.spontaneity_gap_us);
    e.u64(c.announce_spike_floods);
    e.u64(c.imbalance_min_delivers);
    e.u64(c.imbalance_max_pct);
    e.opt_f64(c.battery_capacity_j);
    e.u64(c.depletion_horizon_us);
    e.f64(c.depletion_min_fraction);
    e.u64(c.seq_window as u64);
}

fn enc_node(e: &mut Enc, s: &NodeStats) {
    e.u64(s.tx_control);
    e.u64(s.tx_data);
    e.u64(s.tx_security);
    e.u64(s.rx);
    e.u64(s.rx_data);
    e.u64(s.rx_mesh_data);
    e.u64(s.tx_mesh_data);
    for d in s.drops {
        e.u64(d);
    }
    e.u64(s.forwards);
    e.u64(s.dup_forwards);
    e.u64(s.delivers);
    e.u64(s.route_installs);
    e.u64(s.spontaneous_ctrl);
    e.opt_u64(s.last_rx_t);
    e.f64(s.consumed_j);
    match s.energy_anchor {
        Some((t, j)) => {
            e.boolean(true);
            e.u64(t);
            e.f64(j);
        }
        None => e.boolean(false),
    }
    e.u64(s.last_energy_t);
    e.ewma(&s.tx_rate);
    e.u64(s.w_tx_control);
    e.u64(s.w_tx_total);
    e.u64(s.w_dup_forwards);
}

fn enc_gateway(e: &mut Enc, g: &GatewayStats) {
    e.u64(g.delivers);
    e.u64(g.w_delivers);
    e.opt_u64(g.last_deliver_window);
    e.u64(g.moves);
    e.u64(g.routes_installed);
    e.ewma(&g.deliver_rate);
    e.boolean(g.silence_latched);
    e.boolean(g.base_silence_latched);
}

fn enc_net(e: &mut Enc, n: &NetStats) {
    e.u64(n.events);
    e.u64(n.tx_total);
    e.u64(n.rx_total);
    for d in n.drops {
        e.u64(d);
    }
    e.u64(n.forwards);
    e.u64(n.dup_forwards);
    e.u64(n.delivers);
    e.u64(n.dup_delivers);
    e.u64(n.route_installs);
    e.opt_u64(n.last_forward_window);
    e.opt_u64(n.last_mesh_data_window);
    e.u64(n.w_forwards);
    e.u64(n.w_duplicates);
    e.u64(n.w_delivers);
}

/// Serialise the monitor's full detector state. Alerts already raised
/// (and the drain cursor) are deliberately excluded: a restored
/// monitor reports only alerts raised *after* the checkpoint, while
/// the carried latch sets keep it from re-raising earlier ones.
pub fn snapshot(m: &HealthMonitor) -> Vec<u8> {
    let mut e = Enc { out: Vec::new() };
    e.out.extend_from_slice(&CHECKPOINT_MAGIC);
    enc_config(&mut e, &m.cfg);
    e.u64(m.cur_window);
    e.u64(m.nodes.len() as u64);
    for s in &m.nodes {
        enc_node(&mut e, s);
    }
    e.u64(m.gateways.len() as u64);
    for (&id, g) in &m.gateways {
        e.u64(id);
        enc_gateway(&mut e, g);
    }
    enc_net(&mut e, &m.net);
    e.u64(m.seq_ring.len() as u64);
    for &seq in &m.seq_ring {
        e.u64(seq);
    }
    // HashMap/HashSet iteration order is unstable; sort for a
    // deterministic byte stream.
    let mut seqs: Vec<(u64, TraceKind, TraceTier, u32)> = m
        .seq_kinds
        .iter()
        .map(|(&s, &(k, t, n))| (s, k, t, n))
        .collect();
    seqs.sort_unstable_by_key(|&(s, ..)| s);
    e.u64(seqs.len() as u64);
    for (seq, kind, tier, count) in seqs {
        e.u64(seq);
        e.u8(kind_tag(kind));
        e.u8(tier_tag(tier));
        e.u32(count);
    }
    let mut fwd: Vec<(u64, u64, u64)> = m.forwarded.iter().copied().collect();
    fwd.sort_unstable();
    e.u64(fwd.len() as u64);
    for (a, b, c) in fwd {
        e.u64(a);
        e.u64(b);
        e.u64(c);
    }
    let mut dlv: Vec<(u64, u64)> = m.delivered.iter().copied().collect();
    dlv.sort_unstable();
    e.u64(dlv.len() as u64);
    for (a, b) in dlv {
        e.u64(a);
        e.u64(b);
    }
    e.u64(m.rreq_grace.len() as u64);
    for &g in &m.rreq_grace {
        e.u64(g);
    }
    e.u64(m.latched.len() as u64);
    for &(kind, subject) in &m.latched {
        e.u8(alert_kind_tag(kind));
        e.u64(subject);
    }
    e.out
}

// ------------------------------------------------------------ decode --

struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.b.len() < self.pos + n {
            return Err(format!(
                "checkpoint truncated at byte {} (wanted {n} more of {})",
                self.pos,
                self.b.len()
            ));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn boolean(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("checkpoint: bad bool byte {v}")),
        }
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        Ok(if self.boolean()? {
            Some(self.u64()?)
        } else {
            None
        })
    }
    fn opt_f64(&mut self) -> Result<Option<f64>, String> {
        Ok(if self.boolean()? {
            Some(self.f64()?)
        } else {
            None
        })
    }
    fn ewma(&mut self) -> Result<Ewma, String> {
        let value = self.f64()?;
        let seeded = self.boolean()?;
        Ok(Ewma::from_parts(value, seeded))
    }
    fn len(&mut self) -> Result<usize, String> {
        let n = self.u64()?;
        // A length can never exceed the remaining bytes (every element
        // is ≥ 1 byte) — reject early instead of huge allocations.
        if n as usize > self.b.len() - self.pos {
            return Err(format!("checkpoint: implausible collection length {n}"));
        }
        Ok(n as usize)
    }
}

fn dec_config(d: &mut Dec) -> Result<HealthConfig, String> {
    Ok(HealthConfig {
        window_us: d.u64()?,
        ewma_alpha: d.f64()?,
        silence_windows: d.u64()?,
        duplicate_storm_threshold: d.u64()?,
        asymmetry_min_rx_data: d.u64()?,
        backbone_min_rx_data: d.u64()?,
        spontaneity_gap_us: d.u64()?,
        announce_spike_floods: d.u64()?,
        imbalance_min_delivers: d.u64()?,
        imbalance_max_pct: d.u64()?,
        battery_capacity_j: d.opt_f64()?,
        depletion_horizon_us: d.u64()?,
        depletion_min_fraction: d.f64()?,
        seq_window: d.u64()? as usize,
    })
}

fn dec_node(d: &mut Dec) -> Result<NodeStats, String> {
    let mut s = NodeStats {
        tx_control: d.u64()?,
        tx_data: d.u64()?,
        tx_security: d.u64()?,
        rx: d.u64()?,
        rx_data: d.u64()?,
        rx_mesh_data: d.u64()?,
        tx_mesh_data: d.u64()?,
        ..NodeStats::default()
    };
    for i in 0..DROP_CAUSE_COUNT {
        s.drops[i] = d.u64()?;
    }
    s.forwards = d.u64()?;
    s.dup_forwards = d.u64()?;
    s.delivers = d.u64()?;
    s.route_installs = d.u64()?;
    s.spontaneous_ctrl = d.u64()?;
    s.last_rx_t = d.opt_u64()?;
    s.consumed_j = d.f64()?;
    s.energy_anchor = if d.boolean()? {
        Some((d.u64()?, d.f64()?))
    } else {
        None
    };
    s.last_energy_t = d.u64()?;
    s.tx_rate = d.ewma()?;
    s.w_tx_control = d.u64()?;
    s.w_tx_total = d.u64()?;
    s.w_dup_forwards = d.u64()?;
    Ok(s)
}

fn dec_gateway(d: &mut Dec) -> Result<GatewayStats, String> {
    Ok(GatewayStats {
        delivers: d.u64()?,
        w_delivers: d.u64()?,
        last_deliver_window: d.opt_u64()?,
        moves: d.u64()?,
        routes_installed: d.u64()?,
        deliver_rate: d.ewma()?,
        silence_latched: d.boolean()?,
        base_silence_latched: d.boolean()?,
    })
}

fn dec_net(d: &mut Dec) -> Result<NetStats, String> {
    let mut n = NetStats {
        events: d.u64()?,
        tx_total: d.u64()?,
        rx_total: d.u64()?,
        ..NetStats::default()
    };
    for i in 0..DROP_CAUSE_COUNT {
        n.drops[i] = d.u64()?;
    }
    n.forwards = d.u64()?;
    n.dup_forwards = d.u64()?;
    n.delivers = d.u64()?;
    n.dup_delivers = d.u64()?;
    n.route_installs = d.u64()?;
    n.last_forward_window = d.opt_u64()?;
    n.last_mesh_data_window = d.opt_u64()?;
    n.w_forwards = d.u64()?;
    n.w_duplicates = d.u64()?;
    n.w_delivers = d.u64()?;
    Ok(n)
}

/// Rebuild a monitor from [`snapshot`] bytes. The restored monitor
/// continues exactly where the snapshot was taken: feeding it the
/// same subsequent events produces the same subsequent alerts the
/// original would have raised.
pub fn restore(bytes: &[u8]) -> Result<HealthMonitor, String> {
    let mut d = Dec { b: bytes, pos: 0 };
    if d.take(8)? != CHECKPOINT_MAGIC {
        return Err("checkpoint: bad magic".into());
    }
    let cfg = dec_config(&mut d)?;
    let cur_window = d.u64()?;
    let n_nodes = d.len()?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(dec_node(&mut d)?);
    }
    let n_gw = d.len()?;
    let mut gateways = BTreeMap::new();
    for _ in 0..n_gw {
        let id = d.u64()?;
        gateways.insert(id, dec_gateway(&mut d)?);
    }
    let net = dec_net(&mut d)?;
    let n_ring = d.len()?;
    let mut seq_ring = VecDeque::with_capacity(n_ring);
    for _ in 0..n_ring {
        seq_ring.push_back(d.u64()?);
    }
    let n_seqs = d.len()?;
    let mut seq_kinds = HashMap::with_capacity(n_seqs);
    for _ in 0..n_seqs {
        let seq = d.u64()?;
        let kind = kind_of_tag(d.u8()?)?;
        let tier = tier_of_tag(d.u8()?)?;
        let count = d.u32()?;
        seq_kinds.insert(seq, (kind, tier, count));
    }
    let n_fwd = d.len()?;
    let mut forwarded = HashSet::with_capacity(n_fwd);
    for _ in 0..n_fwd {
        forwarded.insert((d.u64()?, d.u64()?, d.u64()?));
    }
    let n_dlv = d.len()?;
    let mut delivered = HashSet::with_capacity(n_dlv);
    for _ in 0..n_dlv {
        delivered.insert((d.u64()?, d.u64()?));
    }
    let n_grace = d.len()?;
    let mut rreq_grace = Vec::with_capacity(n_grace);
    for _ in 0..n_grace {
        rreq_grace.push(d.u64()?);
    }
    let n_latched = d.len()?;
    let mut latched = BTreeSet::new();
    for _ in 0..n_latched {
        let kind = alert_kind_of_tag(d.u8()?)?;
        latched.insert((kind, d.u64()?));
    }
    if d.pos != bytes.len() {
        return Err(format!(
            "checkpoint: {} trailing bytes after state",
            bytes.len() - d.pos
        ));
    }
    Ok(HealthMonitor {
        cfg,
        nodes,
        gateways,
        net,
        seq_kinds,
        seq_ring,
        forwarded,
        delivered,
        rreq_grace,
        cur_window,
        alerts: Vec::new(),
        drained: 0,
        latched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmsn_trace::TraceEvent;
    use wmsn_util::NodeId;

    /// A busy synthetic stream exercising every piece of monitor
    /// state: mixed kinds/tiers, duplicates, deliveries, energy,
    /// RREQ grace, latched detectors.
    fn busy_monitor() -> HealthMonitor {
        let mut m = HealthMonitor::with_config(HealthConfig {
            battery_capacity_j: Some(2.0),
            ..HealthConfig::default()
        });
        for i in 0..40u64 {
            let t = i * 60_000;
            m.observe(&TraceEvent::TxStart {
                t,
                seq: i,
                src: NodeId((i % 5) as u32),
                dst: if i % 3 == 0 { None } else { Some(NodeId(9)) },
                tier: if i % 4 == 0 {
                    wmsn_trace::TraceTier::Mesh
                } else {
                    wmsn_trace::TraceTier::Sensor
                },
                kind: match i % 3 {
                    0 => wmsn_trace::TraceKind::Control,
                    1 => wmsn_trace::TraceKind::Data,
                    _ => wmsn_trace::TraceKind::Security,
                },
                bytes: 48,
            });
            m.observe(&TraceEvent::Rx {
                t: t + 10,
                seq: i,
                node: NodeId(((i + 1) % 6) as u32),
            });
            if i % 2 == 0 {
                m.observe(&TraceEvent::Forward {
                    t: t + 20,
                    node: NodeId(2),
                    origin: NodeId(1),
                    msg_id: i / 4,
                    next: Some(NodeId(9)),
                    hops: 2,
                });
            }
            if i % 5 == 0 {
                m.observe(&TraceEvent::Deliver {
                    t: t + 30,
                    node: NodeId(9),
                    origin: NodeId(1),
                    msg_id: i / 10,
                    hops: 3,
                    latency_us: 100,
                });
            }
            m.observe(&TraceEvent::Energy {
                t: t + 40,
                node: NodeId(1),
                consumed_j: 0.02 * i as f64,
            });
            if i % 7 == 0 {
                m.observe(&TraceEvent::RreqFlood {
                    t: t + 50,
                    node: NodeId(3),
                    origin: NodeId(3),
                    req_id: i,
                    forwarded: false,
                });
            }
        }
        m
    }

    /// The continuation events fed after the snapshot point.
    fn tail_events() -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for i in 0..30u64 {
            let t = 3_000_000 + i * 80_000;
            out.push(TraceEvent::Forward {
                t,
                node: NodeId(2),
                origin: NodeId(1),
                msg_id: 3,
                next: Some(NodeId(9)),
                hops: 2,
            });
            out.push(TraceEvent::Rx {
                t: t + 5,
                seq: i % 8,
                node: NodeId(4),
            });
        }
        out
    }

    #[test]
    fn snapshot_restore_round_trips_and_continues_identically() {
        let m = busy_monitor();
        let blob = snapshot(&m);
        let restored = restore(&blob).expect("restore");
        // Same state → same bytes again (deterministic encoding).
        assert_eq!(snapshot(&restored), blob);

        // Continuation equivalence: feed the same tail to the original
        // and the restored monitor; their new alerts must match.
        let mut full = m.clone();
        let before = full.alerts().len();
        let mut resumed = restored;
        for ev in tail_events() {
            full.observe(&ev);
            resumed.observe(&ev);
        }
        full.finalize();
        resumed.finalize();
        assert_eq!(
            crate::alert::alerts_to_jsonl(&full.alerts()[before..]),
            resumed.alerts_jsonl(),
            "restored monitor must continue byte-identically"
        );
        assert_eq!(full.net().events, resumed.net().events);
    }

    #[test]
    fn fresh_monitor_round_trips() {
        let m = HealthMonitor::new();
        let restored = restore(&snapshot(&m)).expect("restore");
        assert_eq!(snapshot(&restored), snapshot(&m));
    }

    #[test]
    fn corruption_is_a_hard_error() {
        let blob = snapshot(&busy_monitor());
        assert!(restore(&blob[..7]).is_err());
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        assert!(restore(&bad)
            .err()
            .expect("bad magic")
            .contains("bad magic"));
        let mut long = blob.clone();
        long.push(0);
        assert!(restore(&long).err().expect("trailing").contains("trailing"));
        assert!(restore(&blob[..blob.len() - 3]).is_err());
    }
}
