//! Typed health alerts.
//!
//! Each alert is a small `Copy` value naming the detector that fired,
//! the entity it fired on, and the integer evidence behind it. Like
//! trace events, alerts serialise to one flat JSON object with fixed
//! key order, so an alert stream is byte-deterministic for a
//! deterministic run — the golden E18 test pins this.

use wmsn_util::json::Json;

/// The detector classes of the bank (§4.2 watchdog, §4.3 QoS, §2.3/§6
/// attack fingerprints, plus the lifetime forecast).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertKind {
    /// A gateway that was absorbing traffic went silent while the
    /// network kept forwarding — the §4.2 watchdog condition.
    GatewaySilence,
    /// The same application message is being re-forwarded or
    /// re-delivered at storm rate — replay / wormhole re-injection.
    DuplicateStorm,
    /// A node attracts data it neither forwards nor delivers —
    /// sinkhole / blackhole / data-dropping wormhole.
    ForwardAsymmetry,
    /// A non-gateway node keeps seeding control floods unprompted —
    /// forged gateway-move announcements or a HELLO flood.
    AnnounceSpike,
    /// One gateway is absorbing a pathological share of deliveries
    /// while peers idle (§4.3 load-balance trigger).
    LoadImbalance,
    /// A node's consumption slope forecasts battery exhaustion within
    /// the configured horizon (first-death ETA).
    EnergyDepletion,
    /// A backbone node attracts mesh-tier data it never re-transmits
    /// over the mesh nor delivers — the WMG↔WMG analogue of
    /// [`AlertKind::ForwardAsymmetry`] (E12 backbone-fault coverage).
    BackboneAsymmetry,
    /// A mesh-fed delivering node (the base station) stopped delivering
    /// while mesh-tier data kept flowing — backbone delivery silence.
    BaseSilence,
}

impl AlertKind {
    /// Every detector class, in serialisation order.
    pub fn all() -> [AlertKind; 8] {
        [
            AlertKind::GatewaySilence,
            AlertKind::DuplicateStorm,
            AlertKind::ForwardAsymmetry,
            AlertKind::AnnounceSpike,
            AlertKind::LoadImbalance,
            AlertKind::EnergyDepletion,
            AlertKind::BackboneAsymmetry,
            AlertKind::BaseSilence,
        ]
    }

    /// Stable string form used in the JSONL output and CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertKind::GatewaySilence => "gateway_silence",
            AlertKind::DuplicateStorm => "duplicate_storm",
            AlertKind::ForwardAsymmetry => "forward_asymmetry",
            AlertKind::AnnounceSpike => "announce_spike",
            AlertKind::LoadImbalance => "load_imbalance",
            AlertKind::EnergyDepletion => "energy_depletion",
            AlertKind::BackboneAsymmetry => "backbone_asymmetry",
            AlertKind::BaseSilence => "base_silence",
        }
    }

    /// Inverse of [`AlertKind::as_str`].
    pub fn from_name(name: &str) -> Option<AlertKind> {
        AlertKind::all().into_iter().find(|k| k.as_str() == name)
    }
}

/// One alert raised by the detector bank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthAlert {
    /// Which detector fired.
    pub kind: AlertKind,
    /// Simulation time (µs) at which the condition was confirmed —
    /// always a window boundary or flush point.
    pub t: u64,
    /// The accused / affected entity (node or gateway id).
    pub subject: u64,
    /// Detector-specific evidence value (e.g. duplicate count, silent
    /// windows, spontaneous floods, window deliveries, ETA in µs).
    pub observed: u64,
    /// The threshold the evidence crossed.
    pub threshold: u64,
}

impl HealthAlert {
    /// Parse one alert back from its JSONL form (the inverse of
    /// [`HealthAlert::to_json`]) — the `explain <json-line>` entry
    /// point. Unknown detector names and missing keys are hard errors.
    pub fn from_json_line(line: &str) -> Result<HealthAlert, String> {
        let rec = wmsn_trace::parse_line(line)?;
        let field = |key: &str| -> Result<u64, String> {
            wmsn_trace::parse::get(&rec, key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("alert line: missing or non-integer `{key}`"))
        };
        let name = wmsn_trace::parse::get(&rec, "alert")
            .and_then(|v| v.as_str())
            .ok_or("alert line: missing `alert` name")?;
        let kind = AlertKind::from_name(name)
            .ok_or_else(|| format!("alert line: unknown detector `{name}`"))?;
        Ok(HealthAlert {
            kind,
            t: field("t")?,
            subject: field("subject")?,
            observed: field("observed")?,
            threshold: field("threshold")?,
        })
    }

    /// Serialise to one flat JSON object with fixed key order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("alert", Json::from(self.kind.as_str())),
            ("t", Json::from(self.t)),
            ("subject", Json::from(self.subject)),
            ("observed", Json::from(self.observed)),
            ("threshold", Json::from(self.threshold)),
        ])
    }
}

/// Render a slice of alerts as JSONL (one alert per line, trailing
/// newline per line) — the byte-deterministic form golden tests pin.
pub fn alerts_to_jsonl(alerts: &[HealthAlert]) -> String {
    let mut out = String::new();
    for a in alerts {
        out.push_str(&a.to_json().to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_json_is_compact_and_key_ordered() {
        let a = HealthAlert {
            kind: AlertKind::DuplicateStorm,
            t: 42,
            subject: 7,
            observed: 9,
            threshold: 3,
        };
        assert_eq!(
            a.to_json().to_string(),
            r#"{"alert":"duplicate_storm","t":42,"subject":7,"observed":9,"threshold":3}"#
        );
    }

    #[test]
    fn kinds_have_unique_stable_names() {
        let names: Vec<&str> = AlertKind::all().iter().map(|k| k.as_str()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn json_round_trips_through_from_json_line() {
        for kind in AlertKind::all() {
            let a = HealthAlert {
                kind,
                t: 1_500_000,
                subject: 42,
                observed: 9,
                threshold: 3,
            };
            let line = a.to_json().to_string();
            assert_eq!(HealthAlert::from_json_line(&line), Ok(a), "{line}");
        }
        assert!(HealthAlert::from_json_line("{\"alert\":\"nope\",\"t\":1}").is_err());
        assert!(HealthAlert::from_json_line("not json").is_err());
    }

    #[test]
    fn jsonl_rendering_is_one_line_per_alert() {
        let a = HealthAlert {
            kind: AlertKind::GatewaySilence,
            t: 1,
            subject: 2,
            observed: 3,
            threshold: 4,
        };
        let text = alerts_to_jsonl(&[a, a]);
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }
}
