//! Online network-health monitor for the WMSN stack.
//!
//! The trace layer (`wmsn-trace`) gave the simulator a flight recorder;
//! this crate gives it cockpit instruments. [`HealthMonitor`] is a
//! [`wmsn_trace::TraceSink`] that aggregates the event stream *online*
//! into windowed / EWMA statistics per node, per gateway, and
//! network-wide, and runs a bank of detectors over them at window
//! boundaries, producing typed [`HealthAlert`]s:
//!
//! - **gateway_silence** — the §4.2 watchdog: a previously-delivering
//!   gateway stops while traffic keeps flowing.
//! - **duplicate_storm** — replayed / re-injected application messages.
//! - **forward_asymmetry** — a node attracts data it never forwards or
//!   delivers (sinkhole, blackhole, data-dropping wormhole).
//! - **announce_spike** — unprompted control floods (forged gateway
//!   moves, HELLO floods).
//! - **load_imbalance** — one gateway absorbing a pathological share of
//!   deliveries (§4.3 QoS trigger).
//! - **energy_depletion** — first-death ETA forecast from the residual
//!   energy slope.
//!
//! The detectors are *blind*: they see only the trace stream. The E18
//! experiment runs every E6 attack scenario through the monitor without
//! labels and checks each is fingerprinted with its expected alert
//! class, with zero false alerts on the healthy baseline.
//!
//! [`HealthPolicy`] closes the loop, mapping alerts to the recovery
//! levers the stack already has (gateway removal, secure blacklisting,
//! quarantine, §4.3 load rebalancing); the sim-side applier lives in
//! `wmsn_core::health_loop` because this crate deliberately cannot see
//! the routing stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod checkpoint;
pub mod forensics;
pub mod monitor;
pub mod policy;
pub mod stats;

pub use alert::{alerts_to_jsonl, AlertKind, HealthAlert};
pub use checkpoint::{restore, snapshot, CHECKPOINT_MAGIC};
pub use forensics::{
    alerts_in_window, compact_capture, explain_alert, replay_window, replay_window_with,
    AlertForensics, CompactionPolicy, CompactionStats, ForensicCaptureSink, WindowPoint,
    WindowReplayStats,
};
pub use monitor::{HealthConfig, HealthMonitor};
pub use policy::{HealthAction, HealthPolicy};
pub use stats::{
    drop_cause_at, drop_cause_index, Ewma, GatewayStats, NetStats, NodeStats, DROP_CAUSE_COUNT,
};
