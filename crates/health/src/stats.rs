//! Streaming statistics: windowed counters and EWMA rates.
//!
//! The monitor aggregates the trace stream into fixed-size per-node and
//! per-gateway accumulators that are updated in O(1) per event and read
//! by the detector bank at window boundaries. All counters are integers
//! and all floating-point work is a fixed sequence of operations on the
//! same inputs, so a deterministic event stream yields deterministic
//! statistics (and therefore a byte-deterministic alert stream).

use wmsn_trace::DropCause;

/// Number of [`DropCause`] variants, and the canonical dense index of
/// each. Kept next to [`drop_cause_index`] so the exhaustiveness test
/// can pin the mapping.
pub const DROP_CAUSE_COUNT: usize = 5;

/// Dense index of a drop cause into per-node/per-network tally arrays.
///
/// The `match` is exhaustive on purpose: adding a `DropCause` variant
/// fails compilation here until the monitor learns to account for it.
pub fn drop_cause_index(cause: DropCause) -> usize {
    match cause {
        DropCause::Collision => 0,
        DropCause::Loss => 1,
        DropCause::Dead => 2,
        DropCause::OutOfRange => 3,
        DropCause::Energy => 4,
    }
}

/// The drop cause at a dense index (inverse of [`drop_cause_index`]).
pub fn drop_cause_at(index: usize) -> Option<DropCause> {
    [
        DropCause::Collision,
        DropCause::Loss,
        DropCause::Dead,
        DropCause::OutOfRange,
        DropCause::Energy,
    ]
    .get(index)
    .copied()
}

/// Exponentially weighted moving average over per-window samples.
///
/// `alpha` is the weight of the newest sample. The first sample seeds
/// the average directly so short traces are not biased toward zero.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ewma {
    value: f64,
    seeded: bool,
}

impl Ewma {
    /// Fold in one sample.
    pub fn update(&mut self, sample: f64, alpha: f64) {
        if self.seeded {
            self.value += alpha * (sample - self.value);
        } else {
            self.value = sample;
            self.seeded = true;
        }
    }

    /// Current average (0.0 before any sample).
    pub fn get(&self) -> f64 {
        self.value
    }

    /// Whether at least one sample has been folded in.
    pub fn is_seeded(&self) -> bool {
        self.seeded
    }

    /// The raw `(value, seeded)` state — the checkpoint codec's view.
    pub fn raw_parts(&self) -> (f64, bool) {
        (self.value, self.seeded)
    }

    /// Rebuild from [`Ewma::raw_parts`] output (checkpoint restore).
    pub fn from_parts(value: f64, seeded: bool) -> Ewma {
        Ewma { value, seeded }
    }
}

/// Per-node streaming statistics. One entry per node id the trace has
/// mentioned; all fields are cumulative unless prefixed `w_` (current
/// window, reset at each window boundary).
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Control frames transmitted.
    pub tx_control: u64,
    /// Data frames transmitted.
    pub tx_data: u64,
    /// Security frames transmitted.
    pub tx_security: u64,
    /// Frames received intact.
    pub rx: u64,
    /// Sensor-tier data frames received intact (classified via the
    /// frame sequence number announced by the matching `tx_start`).
    pub rx_data: u64,
    /// Mesh-tier data frames received intact — the backbone traffic a
    /// WMG/WMR/base node absorbs from peers.
    pub rx_mesh_data: u64,
    /// Mesh-tier data frames transmitted — backbone relaying output.
    pub tx_mesh_data: u64,
    /// Receptions dropped at this node, by [`drop_cause_index`].
    pub drops: [u64; DROP_CAUSE_COUNT],
    /// Application messages forwarded (or originated).
    pub forwards: u64,
    /// Duplicate forwards: the same `(origin, msg_id)` forwarded by this
    /// node more than once — the replay/wormhole re-injection signature.
    pub dup_forwards: u64,
    /// End-to-end deliveries completed at this node.
    pub delivers: u64,
    /// Routes installed by this node (route churn).
    pub route_installs: u64,
    /// Spontaneous control broadcasts: control-kind broadcast
    /// transmissions with no recent reception and no matching RREQ
    /// origination — the forged-announce / HELLO-flood signature.
    pub spontaneous_ctrl: u64,
    /// Time of the most recent intact reception (µs).
    pub last_rx_t: Option<u64>,
    /// Cumulative energy consumed (J), from the latest `energy` event.
    pub consumed_j: f64,
    /// First energy observation `(t, consumed_j)` — anchor of the
    /// depletion slope.
    pub energy_anchor: Option<(u64, f64)>,
    /// Time of the latest energy observation (µs).
    pub last_energy_t: u64,
    /// EWMA of per-window transmissions (control + data + security).
    pub tx_rate: Ewma,
    /// Control frames transmitted in the current window.
    pub w_tx_control: u64,
    /// Total frames transmitted in the current window.
    pub w_tx_total: u64,
    /// Duplicate forwards in the current window.
    pub w_dup_forwards: u64,
}

impl NodeStats {
    /// Total frames transmitted across all kinds.
    pub fn tx_total(&self) -> u64 {
        self.tx_control + self.tx_data + self.tx_security
    }

    /// Total receptions dropped at this node.
    pub fn drops_total(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Control:data transmit ratio (∞-safe: data count clamped to ≥ 1).
    pub fn control_data_ratio(&self) -> f64 {
        self.tx_control as f64 / (self.tx_data.max(1)) as f64
    }

    /// Energy-depletion rate in joules per second, from the anchor to
    /// the latest observation. `None` until two distinct observations.
    pub fn energy_rate_j_per_s(&self) -> Option<f64> {
        let (t0, c0) = self.energy_anchor?;
        let dt_us = self.last_energy_t.checked_sub(t0)?;
        if dt_us == 0 {
            return None;
        }
        Some((self.consumed_j - c0) * 1e6 / dt_us as f64)
    }

    /// Close the current window: fold rates, reset window counters.
    pub(crate) fn roll_window(&mut self, alpha: f64) {
        self.tx_rate.update(self.w_tx_total as f64, alpha);
        self.w_tx_control = 0;
        self.w_tx_total = 0;
        self.w_dup_forwards = 0;
    }
}

impl NodeStats {
    /// Predicted time (µs) at which this node's battery of
    /// `capacity_j` joules is exhausted, extrapolating the observed
    /// consumption slope from `now`. `None` without a usable slope.
    pub fn depletion_eta_us(&self, capacity_j: f64, now: u64) -> Option<u64> {
        let rate = self.energy_rate_j_per_s()?;
        if rate <= 0.0 {
            return None;
        }
        let left_j = capacity_j - self.consumed_j;
        if left_j <= 0.0 {
            return Some(now);
        }
        let eta_s = left_j / rate;
        Some(now.saturating_add((eta_s * 1e6) as u64))
    }
}

/// Per-gateway streaming statistics, keyed by the gateway ids the trace
/// reveals (`gateway_move`, `route_install`, `cache_reply`,
/// `route_select` events, and delivery destinations).
#[derive(Clone, Debug, Default)]
pub struct GatewayStats {
    /// Deliveries absorbed in total.
    pub delivers: u64,
    /// Deliveries absorbed in the current window.
    pub w_delivers: u64,
    /// Window index of the most recent delivery.
    pub last_deliver_window: Option<u64>,
    /// Place announcements observed (`gateway_move` events).
    pub moves: u64,
    /// Routes installed toward this gateway (network-wide churn).
    pub routes_installed: u64,
    /// EWMA of per-window deliveries.
    pub deliver_rate: Ewma,
    /// Whether a gateway-silence alert has been raised and not yet
    /// cleared by a subsequent delivery.
    pub silence_latched: bool,
    /// Whether a base-silence alert has been raised and not yet cleared
    /// by a subsequent delivery (the backbone-tier latch).
    pub base_silence_latched: bool,
}

impl GatewayStats {
    pub(crate) fn roll_window(&mut self, alpha: f64) {
        self.deliver_rate.update(self.w_delivers as f64, alpha);
        self.w_delivers = 0;
    }
}

/// Network-wide counters the detectors read alongside the per-entity
/// tables.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Events consumed.
    pub events: u64,
    /// Total frames transmitted.
    pub tx_total: u64,
    /// Total intact receptions.
    pub rx_total: u64,
    /// Network-wide drops by [`drop_cause_index`].
    pub drops: [u64; DROP_CAUSE_COUNT],
    /// Total forwards.
    pub forwards: u64,
    /// Total duplicate forwards (see [`NodeStats::dup_forwards`]).
    pub dup_forwards: u64,
    /// Total deliveries.
    pub delivers: u64,
    /// Duplicate deliveries: `(origin, msg_id)` delivered more than once.
    pub dup_delivers: u64,
    /// Total route installs (churn).
    pub route_installs: u64,
    /// Window index of the most recent data forward.
    pub last_forward_window: Option<u64>,
    /// Window index of the most recent mesh-tier data transmission —
    /// the "backbone still carrying traffic" witness base-silence needs.
    pub last_mesh_data_window: Option<u64>,
    /// Forwards in the current window.
    pub w_forwards: u64,
    /// Duplicate forwards + duplicate deliveries in the current window.
    pub w_duplicates: u64,
    /// Deliveries in the current window.
    pub w_delivers: u64,
}

impl NetStats {
    /// Total drops across all causes.
    pub fn drops_total(&self) -> u64 {
        self.drops.iter().sum()
    }

    pub(crate) fn roll_window(&mut self) {
        self.w_forwards = 0;
        self.w_duplicates = 0;
        self.w_delivers = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_cause_index_round_trips() {
        for i in 0..DROP_CAUSE_COUNT {
            let cause = drop_cause_at(i).expect("dense index");
            assert_eq!(drop_cause_index(cause), i);
        }
        assert!(drop_cause_at(DROP_CAUSE_COUNT).is_none());
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        let mut e = Ewma::default();
        assert_eq!(e.get(), 0.0);
        e.update(10.0, 0.5);
        assert_eq!(e.get(), 10.0);
        e.update(0.0, 0.5);
        assert_eq!(e.get(), 5.0);
        assert!(e.is_seeded());
    }

    #[test]
    fn energy_slope_and_eta() {
        let mut n = NodeStats {
            energy_anchor: Some((0, 0.0)),
            last_energy_t: 1_000_000,
            consumed_j: 1.0,
            ..NodeStats::default()
        };
        // 1 J over 1 s → 1 J/s.
        assert!((n.energy_rate_j_per_s().unwrap() - 1.0).abs() < 1e-12);
        // 2 J capacity, 1 J left → ETA 1 s out.
        let eta = n.depletion_eta_us(2.0, 1_000_000).unwrap();
        assert_eq!(eta, 2_000_000);
        n.last_energy_t = 0;
        assert!(n.energy_rate_j_per_s().is_none());
    }

    #[test]
    fn window_roll_resets_and_folds() {
        let mut n = NodeStats {
            w_tx_total: 8,
            w_tx_control: 3,
            ..NodeStats::default()
        };
        n.roll_window(0.5);
        assert_eq!(n.w_tx_total, 0);
        assert_eq!(n.w_tx_control, 0);
        assert_eq!(n.tx_rate.get(), 8.0);
    }
}
